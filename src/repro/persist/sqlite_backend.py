"""The durable SQLite backend: one WAL-mode database per node, namenode DB as authority.

Layout under ``persistence_dir``:

- ``namenode.db`` — the directory state: paths + schemas, logical blocks (records as PAX
  byte blobs), ``Dir_block`` host order, ``Dir_rep`` infos plus each replica's physical
  metadata, LRU usage statistics, eviction tombstones, and a key/value ``control`` table
  (allocation counter, usage clock, adaptive salt, tuner state, balancer demand).
- ``node_<id>.db`` — one database per datanode holding that node's replica payload bytes,
  mirroring HAIL's one-journal-per-datanode deployment shape.

Every database runs ``journal_mode=WAL`` (readers never block the journal writer, and a
torn process leaves a WAL SQLite replays on next open) with ``foreign_keys=ON`` so a
block's dependent rows (hosts, infos, usage, tombstones) can never outlive the block row.

**Commit ordering is the crash-safety contract**: a ``sync_block`` first upserts the
payload bytes into each holding node's database (one commit per node, upsert-only — rows
for replicas that disappeared are left behind as orphans), *then* replaces the block's
directory rows in ``namenode.db`` in a single transaction.  A crash between the two (where
:class:`~repro.persist.backend.CrashPoint` fires) leaves node databases strictly ahead of
the directory; restore drives entirely off ``namenode.db`` and ignores payload rows it does
not reference, so any interrupted mutation atomically either happened or did not.  Orphans
are garbage-collected by the next :meth:`~repro.persist.backend.PersistenceBackend.checkpoint`,
which rewrites every database from a full capture.  See ``docs/persistence.md``.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path

from repro.persist import state as state_mod
from repro.persist.backend import PersistenceBackend

_NAMENODE_SCHEMA = """
CREATE TABLE IF NOT EXISTS paths (
    path TEXT PRIMARY KEY,
    schema_json TEXT NOT NULL,
    position INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS blocks (
    block_id INTEGER PRIMARY KEY,
    path TEXT NOT NULL REFERENCES paths(path) ON DELETE CASCADE,
    num_records INTEGER NOT NULL,
    records_blob BLOB NOT NULL,
    bad_lines_json TEXT NOT NULL,
    text_size_bytes INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS dir_block (
    block_id INTEGER NOT NULL REFERENCES blocks(block_id) ON DELETE CASCADE,
    position INTEGER NOT NULL,
    datanode_id INTEGER NOT NULL,
    PRIMARY KEY (block_id, position)
);
CREATE TABLE IF NOT EXISTS dir_rep (
    block_id INTEGER NOT NULL REFERENCES blocks(block_id) ON DELETE CASCADE,
    datanode_id INTEGER NOT NULL,
    info_json TEXT,
    meta_json TEXT NOT NULL,
    PRIMARY KEY (block_id, datanode_id)
);
CREATE TABLE IF NOT EXISTS usage (
    block_id INTEGER NOT NULL REFERENCES blocks(block_id) ON DELETE CASCADE,
    datanode_id INTEGER NOT NULL,
    use_count INTEGER NOT NULL,
    last_tick INTEGER NOT NULL,
    PRIMARY KEY (block_id, datanode_id)
);
CREATE TABLE IF NOT EXISTS evictions (
    block_id INTEGER NOT NULL REFERENCES blocks(block_id) ON DELETE CASCADE,
    attribute TEXT NOT NULL,
    datanode_id INTEGER NOT NULL,
    PRIMARY KEY (block_id, attribute)
);
CREATE TABLE IF NOT EXISTS control (
    key TEXT PRIMARY KEY,
    value_json TEXT NOT NULL
);
"""

_NODE_SCHEMA = """
CREATE TABLE IF NOT EXISTS replicas (
    block_id INTEGER PRIMARY KEY,
    payload_blob BLOB NOT NULL
);
"""


class SqliteBackend(PersistenceBackend):
    """Journal the deployment into SQLite files under ``persistence_dir`` (see module doc)."""

    def __init__(self, directory: str) -> None:
        super().__init__()
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._namenode = self._open(self.directory / "namenode.db", _NAMENODE_SCHEMA)
        self._nodes: dict[int, sqlite3.Connection] = {}

    # ------------------------------------------------------------------ connections
    @staticmethod
    def _open(path: Path, schema: str) -> sqlite3.Connection:
        conn = sqlite3.connect(str(path))
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA foreign_keys=ON")
        conn.executescript(schema)
        conn.commit()
        return conn

    def _node(self, datanode_id: int) -> sqlite3.Connection:
        conn = self._nodes.get(datanode_id)
        if conn is None:
            conn = self._open(self.directory / f"node_{datanode_id}.db", _NODE_SCHEMA)
            self._nodes[datanode_id] = conn
        return conn

    def close(self) -> None:
        """Close every open database connection."""
        self._namenode.close()
        for conn in self._nodes.values():
            conn.close()
        self._nodes.clear()

    # ------------------------------------------------------------------ journaling hooks
    def sync_path(self, path: str, schema) -> None:
        """Upsert the path/schema row, preserving upload order via a position column."""
        self._maybe_crash("sync_path")
        with self._namenode as conn:
            (count,) = conn.execute("SELECT COUNT(*) FROM paths").fetchone()
            conn.execute(
                "INSERT OR REPLACE INTO paths (path, schema_json, position) VALUES (?, ?, ?)",
                (path, json.dumps(state_mod.codec.encode_schema(schema)), count),
            )

    def sync_block(self, hdfs, block_id: int, site: str) -> None:
        """Journal one block: node payload commits first, namenode directory commit last."""
        entry = state_mod.capture_block(hdfs, block_id)
        control = state_mod.capture_namenode_control(hdfs.namenode)
        # Payload bytes first, one commit per holding node.  Upsert-only: rows for replicas
        # that moved or died stay behind as orphans the directory no longer references.
        for datanode_id, stored in entry["replicas"].items():
            with self._node(datanode_id) as conn:
                conn.execute(
                    "INSERT OR REPLACE INTO replicas (block_id, payload_blob) VALUES (?, ?)",
                    (block_id, stored["payload_blob"]),
                )
        # The crash window: payloads are on disk, the directory commit has not happened.
        self._maybe_crash(site)
        # Directory last, in one transaction — the block either fully appears or does not.
        with self._namenode as conn:
            self._write_block_entry(conn, block_id, entry)
            self._write_control(conn, control)

    def sync_control(self, control: dict) -> None:
        """Upsert the control scalars into the namenode DB in one transaction."""
        self._maybe_crash("sync_control")
        with self._namenode as conn:
            self._write_control(conn, control)

    # ------------------------------------------------------------------ write helpers
    @staticmethod
    def _write_control(conn: sqlite3.Connection, control: dict) -> None:
        for key, value in control.items():
            conn.execute(
                "INSERT OR REPLACE INTO control (key, value_json) VALUES (?, ?)",
                (key, json.dumps(value)),
            )

    @staticmethod
    def _write_block_entry(conn: sqlite3.Connection, block_id: int, entry: dict) -> None:
        conn.execute("DELETE FROM blocks WHERE block_id = ?", (block_id,))
        conn.execute(
            "INSERT INTO blocks (block_id, path, num_records, records_blob, bad_lines_json,"
            " text_size_bytes) VALUES (?, ?, ?, ?, ?, ?)",
            (
                block_id,
                entry["path"],
                entry["num_records"],
                entry["records_blob"],
                json.dumps(entry["bad_lines"]),
                entry["text_size_bytes"],
            ),
        )
        for position, datanode_id in enumerate(entry["dir_block"]):
            conn.execute(
                "INSERT INTO dir_block (block_id, position, datanode_id) VALUES (?, ?, ?)",
                (block_id, position, datanode_id),
            )
        for datanode_id, stored in entry["replicas"].items():
            info_json = None if stored["info"] is None else json.dumps(stored["info"])
            conn.execute(
                "INSERT INTO dir_rep (block_id, datanode_id, info_json, meta_json)"
                " VALUES (?, ?, ?, ?)",
                (block_id, datanode_id, info_json, json.dumps(stored["meta"])),
            )
        for datanode_id, (use_count, last_tick) in entry["usage"].items():
            conn.execute(
                "INSERT INTO usage (block_id, datanode_id, use_count, last_tick)"
                " VALUES (?, ?, ?, ?)",
                (block_id, datanode_id, use_count, last_tick),
            )
        for attribute, datanode_id in entry["evictions"].items():
            conn.execute(
                "INSERT INTO evictions (block_id, attribute, datanode_id) VALUES (?, ?, ?)",
                (block_id, attribute, datanode_id),
            )

    # ------------------------------------------------------------------ checkpoint/restore
    def _store_state(self, state: dict) -> None:
        """Rewrite every database from a full capture (also garbage-collects orphans)."""
        per_node: dict[int, list[tuple[int, bytes]]] = {}
        for block_id, entry in state["blocks"].items():
            for datanode_id, stored in entry["replicas"].items():
                per_node.setdefault(datanode_id, []).append(
                    (block_id, stored["payload_blob"])
                )
        for datanode_id, rows in per_node.items():
            with self._node(datanode_id) as conn:
                conn.execute("DELETE FROM replicas")
                conn.executemany(
                    "INSERT INTO replicas (block_id, payload_blob) VALUES (?, ?)", rows
                )
        with self._namenode as conn:
            for table in ("evictions", "usage", "dir_rep", "dir_block", "blocks", "paths"):
                conn.execute(f"DELETE FROM {table}")
            conn.execute("DELETE FROM control")
            for path, meta in state["paths"].items():
                conn.execute(
                    "INSERT INTO paths (path, schema_json, position) VALUES (?, ?, ?)",
                    (path, json.dumps(meta["schema"]), meta["position"]),
                )
            for block_id, entry in state["blocks"].items():
                self._write_block_entry(conn, block_id, entry)
            self._write_control(conn, state["control"])

    def load_state(self) -> dict:
        """Read the whole journal back into the encoded-state dict ``restore_system`` takes.

        Driven entirely off ``namenode.db``; node databases are consulted only for payload
        bytes of replicas the directory references, so crash-window orphans never surface.
        """
        state = state_mod.empty_state()
        conn = self._namenode
        for path, schema_json, position in conn.execute(
            "SELECT path, schema_json, position FROM paths"
        ):
            state["paths"][path] = {"schema": json.loads(schema_json), "position": position}
        for row in conn.execute(
            "SELECT block_id, path, num_records, records_blob, bad_lines_json,"
            " text_size_bytes FROM blocks"
        ):
            block_id, path, num_records, records_blob, bad_lines_json, text_size = row
            state["blocks"][block_id] = {
                "path": path,
                "num_records": num_records,
                "records_blob": records_blob,
                "bad_lines": json.loads(bad_lines_json),
                "text_size_bytes": text_size,
                "dir_block": [],
                "replicas": {},
                "usage": {},
                "evictions": {},
            }
        for block_id, datanode_id in conn.execute(
            "SELECT block_id, datanode_id FROM dir_block ORDER BY block_id, position"
        ):
            state["blocks"][block_id]["dir_block"].append(datanode_id)
        for block_id, datanode_id, info_json, meta_json in conn.execute(
            "SELECT block_id, datanode_id, info_json, meta_json FROM dir_rep"
        ):
            payload_row = self._node(datanode_id).execute(
                "SELECT payload_blob FROM replicas WHERE block_id = ?", (block_id,)
            ).fetchone()
            state["blocks"][block_id]["replicas"][datanode_id] = {
                "info": None if info_json is None else json.loads(info_json),
                "payload_blob": payload_row[0],
                "meta": json.loads(meta_json),
            }
        for block_id, datanode_id, use_count, last_tick in conn.execute(
            "SELECT block_id, datanode_id, use_count, last_tick FROM usage"
        ):
            state["blocks"][block_id]["usage"][datanode_id] = [use_count, last_tick]
        for block_id, attribute, datanode_id in conn.execute(
            "SELECT block_id, attribute, datanode_id FROM evictions"
        ):
            state["blocks"][block_id]["evictions"][attribute] = datanode_id
        for key, value_json in conn.execute("SELECT key, value_json FROM control"):
            state["control"][key] = json.loads(value_json)
        return state
