"""The persistence-backend protocol, crash injection, and the in-memory default.

A backend journals the deployment's durable state — Dir_block/Dir_rep, block payloads,
zone-map synopses, usage statistics, eviction tombstones, and the adaptive tuner's control
state — at every existing mutation point (upload, adaptive commit, eviction downgrade,
balancer rebuild/migrate).  The hooks all funnel through three calls:

- :meth:`PersistenceBackend.sync_path` — a new file entered the namespace (upload start);
- :meth:`PersistenceBackend.sync_block` — one block's state changed; the backend
  re-captures that block *from the authoritative in-memory namenode* and replaces its
  journal entry in a single transaction (no incremental diffing, no drift);
- :meth:`PersistenceBackend.sync_control` — scalar control state changed (adaptive salt,
  tuner knobs, balancer demand).

``sync_block`` carries a ``site`` label naming the mutation point (``"mid_upload"``,
``"mid_adaptive_commit"``, ``"mid_eviction"``, ``"mid_rebalance"``) so the fault-injection
harness (:class:`CrashPoint`) can kill the journal write at an exact site and the crash
matrix (``tests/test_persist_crash_matrix.py``) can prove restore stays consistent from any
of them.  The concurrent runner additionally calls :meth:`PersistenceBackend.barrier` with
site ``"mid_concurrent_batch"`` between job completions of an interleaved batch, so the
matrix can kill a multi-tenant batch halfway and verify the already-completed jobs'
durable state survives restore.  Crash semantics per backend:

- :class:`MemoryBackend` crashes *before* applying the update — the journal keeps the
  pre-mutation state, modelling a process killed before the write hit the store.
- :class:`~repro.persist.sqlite_backend.SqliteBackend` crashes *between* the per-node
  payload commits and the namenode-DB commit — the node DBs hold orphan rows the namenode
  journal does not reference, modelling the worst-case multi-file crash window.  Restore
  treats the namenode DB as the single source of truth and ignores orphans.

Backends default off (``HailConfig.persistence == "off"``); see ``docs/persistence.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.persist import state as state_mod

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.layouts.schema import Schema


class CrashInjected(RuntimeError):
    """Raised by an armed :class:`CrashPoint` to simulate a kill at a journal write site."""


@dataclass
class CrashPoint:
    """Fault injection: kill the journal write at the ``(after + 1)``-th hit of ``site``.

    Arm a backend with ``backend.crash_point = CrashPoint("mid_upload", after=2)`` and the
    third ``sync_block`` carrying that site raises :class:`CrashInjected` mid-write.  The
    point disarms after firing so the subsequent restore (which replays syncs while
    rebuilding state) proceeds normally — one crash per armed point, like a real kill.
    """

    site: str
    after: int = 0
    fired: bool = False

    def check(self, site: str) -> None:
        """Count a journal write at ``site``; raise when this point's trigger is reached."""
        if self.fired or site != self.site:
            return
        if self.after > 0:
            self.after -= 1
            return
        self.fired = True
        raise CrashInjected(f"injected crash at journal write site {site!r}")


class PersistenceBackend:
    """Interface every backend implements (and the base of both shipped backends).

    Subclasses implement :meth:`_store_state` / :meth:`load_state` over the encoded-state
    dict produced by :mod:`repro.persist.state`; the journaling entry points here share the
    capture and crash-injection logic so the two backends agree on semantics.
    """

    def __init__(self) -> None:
        #: Armed fault-injection point, or ``None`` for normal operation.
        self.crash_point: Optional[CrashPoint] = None

    # ------------------------------------------------------------------ crash injection
    def _maybe_crash(self, site: str) -> None:
        """Fire the armed crash point, if any, for a journal write at ``site``."""
        if self.crash_point is not None:
            self.crash_point.check(site)

    def barrier(self, site: str) -> None:
        """A crash site that is *not* a journal write (e.g. ``"mid_concurrent_batch"``).

        Journals nothing; it only gives the fault-injection harness a named point between
        two already-journaled operations at which an armed :class:`CrashPoint` can kill the
        process.
        """
        self._maybe_crash(site)

    # ------------------------------------------------------------------ journaling hooks
    def sync_path(self, path: str, schema: "Schema") -> None:
        """Journal a newly created file path and its schema (called at upload start)."""
        raise NotImplementedError

    def sync_block(self, hdfs, block_id: int, site: str) -> None:
        """Re-journal one block's full state from the in-memory namenode.

        ``site`` names the mutation point for crash injection; the capture itself is
        site-independent — whatever the namenode currently says about the block is what
        gets journaled, wholesale.
        """
        raise NotImplementedError

    def sync_control(self, control: dict) -> None:
        """Merge updated control scalars (salt, tuner, demand) into the journal."""
        raise NotImplementedError

    # ------------------------------------------------------------------ checkpoint/restore
    def checkpoint(self, system) -> None:
        """Replace the whole journal with a fresh capture of ``system``'s durable state."""
        self._store_state(state_mod.checkpoint_state(system))

    def load_state(self) -> dict:
        """The journaled state in the encoded form :func:`repro.persist.state.restore_system` takes."""
        raise NotImplementedError

    def _store_state(self, state: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (no-op unless the backend holds files open)."""


#: Process-global stores of the in-memory backend, keyed by ``persistence_dir``: a restore
#: in the same process under the same config key finds the journal a "killed" deployment
#: left behind, which is exactly the restart model the crash matrix exercises.
_MEMORY_STORES: dict[str, dict] = {}


class MemoryBackend(PersistenceBackend):
    """The no-op-durability default: journals into a process-global in-memory store.

    Offers the full backend contract — journaling hooks, crash injection, checkpoint and
    restore — without touching disk, so tests and experiments can exercise kill-and-restart
    semantics cheaply.  Durability is process-lifetime only: the store survives the
    *deployment* being dropped (that is the simulated crash) but not the Python process.
    """

    def __init__(self, key: str) -> None:
        super().__init__()
        self.key = key
        self._store = _MEMORY_STORES.setdefault(key, state_mod.empty_state())

    def sync_path(self, path: str, schema: "Schema") -> None:
        """Record the path/schema pair in the in-memory store."""
        self._maybe_crash("sync_path")
        state_mod.apply_path(self._store, path, schema)

    def sync_block(self, hdfs, block_id: int, site: str) -> None:
        """Capture the block from the namenode and replace its store entry atomically."""
        captured = state_mod.capture_block(hdfs, block_id)
        control = state_mod.capture_namenode_control(hdfs.namenode)
        # Crash *before* applying: the journal keeps the pre-mutation state, as if the
        # process died before the write reached the store.
        self._maybe_crash(site)
        self._store["blocks"][block_id] = captured
        self._store["control"].update(control)

    def sync_control(self, control: dict) -> None:
        """Merge the control scalars into the store's control map."""
        self._maybe_crash("sync_control")
        self._store["control"].update(control)

    def load_state(self) -> dict:
        """The live store itself (no copy — restore reads, never mutates, it)."""
        return self._store

    def _store_state(self, state: dict) -> None:
        self._store.clear()
        self._store.update(state)
        _MEMORY_STORES[self.key] = self._store


def reset_memory_stores() -> None:
    """Drop every process-global in-memory journal (test isolation helper)."""
    _MEMORY_STORES.clear()
