"""Capture and restore of a deployment's durable state.

This module defines the *encoded state* both backends journal: a plain dict (JSON metadata
plus PAX byte blobs, via :mod:`repro.persist.codec`) describing everything a killed HAIL
deployment needs to come back with its learned index pool intact::

    {
      "paths":   {path: {"schema": ..., "position": n}},
      "blocks":  {block_id: {"path", "num_records", "records_blob", "bad_lines",
                             "text_size_bytes", "dir_block": [datanode ids, in order],
                             "replicas": {datanode_id: {"info", "payload_blob", "meta"}},
                             "usage": {datanode_id: [use_count, last_tick]},
                             "evictions": {attribute: datanode_id}}},
      "control": {"next_block_id", "usage_tick", "adaptive_salt", "tuner", "demand"},
    }

Capture reads only public namenode/datanode accessors and is *wholesale per block*: a
journal write replaces the block's whole entry with whatever the in-memory directories
currently say, so the journal can never drift from the authority it mirrors.

Restore (:func:`restore_system`) rebuilds a **fresh** deployment from that state.  Replica
payloads come back by re-running the shared sort-and-index entry point
(:meth:`~repro.hail.hail_block.HailBlock.build`) over the journaled — already sorted — PAX
bytes: the sort permutation is stable, so an already-sorted column yields the identity
permutation and the restored replica is byte-identical to the one that was journaled.
That, plus restoring the usage clock, allocation counter, adaptive salt, and tuner ledgers
verbatim, is what makes post-restore query answers bit-identical to an uninterrupted run
(``tests/test_persist_recovery.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.persist import codec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hdfs.filesystem import Hdfs
    from repro.hdfs.namenode import NameNode


def empty_state() -> dict:
    """A fresh encoded-state skeleton (what a brand-new journal holds)."""
    return {"paths": {}, "blocks": {}, "control": {}}


# --------------------------------------------------------------------------- capture
def apply_path(state: dict, path: str, schema) -> None:
    """Record a newly created file path (journal side of ``sync_path``)."""
    state["paths"][path] = {
        "schema": codec.encode_schema(schema),
        "position": len(state["paths"]),
    }


def capture_block(hdfs: "Hdfs", block_id: int) -> dict:
    """One block's full journal entry, read from the authoritative in-memory state.

    Covers the logical block (records as PAX bytes, bad lines), the ``Dir_block`` host list
    in registration order, every replica's payload bytes + physical metadata + ``Dir_rep``
    info (zone-map synopsis included), the per-replica LRU statistics, and the block's
    eviction tombstones.
    """
    namenode = hdfs.namenode
    logical = namenode.logical_block(block_id)
    hosts = namenode.block_datanodes(block_id, alive_only=False)
    replicas: dict[int, dict] = {}
    usage: dict[int, list[int]] = {}
    for datanode_id in hosts:
        datanode = hdfs.datanode(datanode_id)
        replica = datanode.replica(block_id)
        payload = replica.payload
        info = namenode.replica_info(block_id, datanode_id)
        replicas[datanode_id] = {
            "info": codec.encode_replica_info(info) if info is not None else None,
            "payload_blob": payload.pax.to_bytes(),
            "meta": {
                "num_rows": payload.pax.num_rows,
                "sort_attribute": payload.sort_attribute,
                "indexed": payload.index is not None,
                "bad_lines": list(payload.bad_lines),
                "partition_size": payload.partition_size,
                "logical_partition_size": payload.logical_partition_size,
                "pax_layout": payload.pax_layout,
                "checksummed": bool(replica.checksums),
            },
        }
        use_count, last_tick = namenode.index_usage(block_id, datanode_id)
        if (use_count, last_tick) != (0, 0):
            usage[datanode_id] = [use_count, last_tick]
    return {
        "path": logical.path,
        "num_records": logical.num_records,
        "records_blob": codec.encode_records(logical.schema, logical.records),
        "bad_lines": list(logical.bad_lines),
        "text_size_bytes": logical.text_size_bytes,
        "dir_block": hosts,
        "replicas": replicas,
        "usage": usage,
        "evictions": namenode.block_eviction_tombstones(block_id),
    }


def capture_namenode_control(namenode: "NameNode") -> dict:
    """The namenode-owned control scalars journaled alongside every block sync."""
    return {"next_block_id": namenode.next_block_id, "usage_tick": namenode.usage_tick}


def capture_system_control(system) -> dict:
    """The system-owned control state: adaptive salt, tuner feedback, balancer demand."""
    control: dict = {"adaptive_salt": getattr(system, "_adaptive_salt", 0)}
    lifecycle = getattr(system, "lifecycle", None)
    if lifecycle is not None:
        control["tuner"] = codec.encode_tuner(lifecycle.tuner)
        if lifecycle.balancer is not None:
            control["demand"] = dict(lifecycle.balancer.demand)
    return control


def checkpoint_state(system) -> dict:
    """A full capture of one system's durable state (the ``checkpoint()`` payload)."""
    hdfs = system.hdfs
    state = empty_state()
    for path in sorted(hdfs.namenode.list_files(), key=_path_order(system)):
        apply_path(state, path, system.schema_of(path))
    for path in state["paths"]:
        for block_id in hdfs.namenode.file_blocks(path):
            state["blocks"][block_id] = capture_block(hdfs, block_id)
    state["control"].update(capture_namenode_control(hdfs.namenode))
    state["control"].update(capture_system_control(system))
    return state


def _path_order(system):
    """Sort key preserving upload order where known (schema-catalog insertion order)."""
    known = {path: i for i, path in enumerate(getattr(system, "_schemas", {}))}
    return lambda path: (known.get(path, len(known)), path)


# --------------------------------------------------------------------------- restore
def restore_system(system, state: dict) -> None:
    """Rebuild a fresh deployment's directories, payloads and control state from a journal.

    The target ``system`` must be empty (as built by a fresh ``Session.deploy``); paths are
    recreated in journal order, blocks re-adopted under their original ids (ascending —
    allocation order, since the id counter is monotone), replicas re-seated host by host in
    ``Dir_block`` registration order, and finally the LRU statistics, tombstones and control
    scalars are put back verbatim.  Tombstones go in *after* replica registration because
    ``register_replica`` clears tombstones for freshly indexed attributes — journal entries
    captured from a live system never contain both, so restore must not re-trigger that rule.
    """
    from repro.hail.hail_block import HailBlock
    from repro.hdfs.block import LogicalBlock, Replica
    from repro.hdfs.checksum import chunk_checksums
    from repro.layouts.pax import PaxBlock

    hdfs = system.hdfs
    namenode = hdfs.namenode
    ordered_paths = sorted(state["paths"], key=lambda p: state["paths"][p]["position"])
    schemas = {}
    for path in ordered_paths:
        schema = codec.decode_schema(state["paths"][path]["schema"])
        schemas[path] = schema
        namenode.create_file(path)
        system._schemas[path] = schema
    for block_id in sorted(state["blocks"]):
        entry = state["blocks"][block_id]
        schema = schemas[entry["path"]]
        records = codec.decode_records(schema, entry["records_blob"], entry["num_records"])
        logical = LogicalBlock(
            block_id=block_id,
            path=entry["path"],
            records=records,
            schema=schema,
            bad_lines=list(entry["bad_lines"]),
            text_size_bytes=entry["text_size_bytes"],
        )
        namenode.adopt_block(entry["path"], logical, block_id)
        for datanode_id in entry["dir_block"]:
            stored = entry["replicas"][datanode_id]
            meta = stored["meta"]
            pax = PaxBlock.from_bytes(schema, stored["payload_blob"], meta["num_rows"])
            # Re-run the shared sort-and-index path over the already-sorted rows: the
            # stable sort yields the identity permutation, so the rebuilt replica is
            # byte-identical to the journaled one, index included.
            block = HailBlock.build(
                schema,
                pax.records(),
                meta["sort_attribute"] if meta["indexed"] else None,
                partition_size=meta["partition_size"],
                bad_lines=meta["bad_lines"],
                logical_partition_size=meta["logical_partition_size"],
            )
            block.pax_layout = meta["pax_layout"]
            checksums: tuple[int, ...] = ()
            if meta["checksummed"]:
                checksums = tuple(chunk_checksums(block.pax.to_bytes()))
            info = (
                codec.decode_replica_info(stored["info"])
                if stored["info"] is not None
                else None
            )
            replica = Replica(
                block_id=block_id,
                datanode_id=datanode_id,
                payload=block,
                checksums=checksums,
                sort_attribute=info.sort_attribute if info is not None else None,
                indexed_attribute=info.indexed_attribute if info is not None else None,
            )
            hdfs.datanode(datanode_id).store_replica(replica)
            namenode.register_replica(block_id, datanode_id, replica_info=info)
        for datanode_id, (use_count, last_tick) in entry["usage"].items():
            namenode.set_index_usage(block_id, int(datanode_id), use_count, last_tick)
        for attribute, datanode_id in entry["evictions"].items():
            namenode.record_index_eviction(block_id, attribute, datanode_id)
    control = state["control"]
    if "next_block_id" in control:
        namenode.set_next_block_id(control["next_block_id"])
    if "usage_tick" in control:
        namenode.set_usage_tick(control["usage_tick"])
    if hasattr(system, "_adaptive_salt"):
        system._adaptive_salt = control.get("adaptive_salt", 0)
    lifecycle = getattr(system, "lifecycle", None)
    if lifecycle is not None:
        tuner = codec.decode_tuner(control.get("tuner"))
        if tuner is not None:
            lifecycle.tuner = tuner
        if lifecycle.balancer is not None and control.get("demand"):
            lifecycle.balancer.demand.update(control["demand"])
