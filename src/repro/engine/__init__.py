"""The unified query-execution engine.

One place for the skip-or-scan decision all three systems (Hadoop, Hadoop++, HAIL) used to make
privately inside their record readers:

- :mod:`repro.engine.access_path` — :class:`AccessPath` and the per-block :class:`BlockPlan`;
- :mod:`repro.engine.planner`     — :class:`PhysicalPlanner` producing inspectable
  :class:`QueryPlan` objects from the namenode's ``Dir_rep`` (with ``explain()``);
- :mod:`repro.engine.executor`    — :class:`VectorizedExecutor` evaluating predicates
  column-at-a-time over PAX partitions and charging the simulated RecordReader cost;
- :mod:`repro.engine.kernels`     — the columnar filter kernels the executor dispatches to:
  a pure-Python reference backend and an optional numpy fast path (``REPRO_KERNELS``);
- :mod:`repro.engine.adaptive`    — LIAH-style adaptive indexing: full scans stage indexed
  replicas as a by-product (:class:`PendingIndexBuild`), which the scheduler registers
  failure-safely after the map phase (:func:`commit_adaptive_builds`);
- :mod:`repro.engine.lifecycle`   — adaptive-index lifecycle management:
  :class:`AdaptiveLifecycleManager` runs disk-pressure LRU eviction
  (:func:`evict_under_pressure`) and the :class:`AdaptiveTuner` feedback controller that
  replaces the static offer-rate/budget knobs;
- :mod:`repro.engine.operators`   — relational operators on top of the scan engine: grouped
  aggregation with map-side combiners, co-partitioned merge / shuffle hash equi-joins, and
  ranked top-k with zone-range early termination.

Record readers are thin shells over ``planner.plan_block()`` + ``executor.execute()``; every
:class:`~repro.systems.base.QueryResult` carries the :class:`QueryPlan` that produced it.
"""

from repro.engine.access_path import AccessPath, BlockPlan
from repro.engine.adaptive import (
    ADAPTIVE_PROPERTY,
    AdaptiveCommitReport,
    AdaptiveJobContext,
    PendingIndexBuild,
    commit_adaptive_builds,
)
from repro.engine.lifecycle import (
    LIFECYCLE_PROPERTY,
    AdaptiveLifecycleManager,
    AdaptiveTuner,
    EvictionRecord,
    JobObservation,
    LifecycleReport,
    evict_under_pressure,
)
from repro.engine import kernels
from repro.engine.executor import (
    BlockScanResult,
    TextScanResult,
    VectorizedExecutor,
    clause_mask,
    vectorized_filter,
)
from repro.engine.operators import (
    AggregateSpec,
    GroupByQuery,
    JoinQuery,
    OperatorQuery,
    TopKQuery,
    execute_operator_query,
    explain_operator,
)
from repro.engine.planner import PhysicalPlanner, QueryPlan, choose_indexed_host

__all__ = [
    "AggregateSpec",
    "GroupByQuery",
    "JoinQuery",
    "OperatorQuery",
    "TopKQuery",
    "execute_operator_query",
    "explain_operator",
    "AccessPath",
    "ADAPTIVE_PROPERTY",
    "AdaptiveCommitReport",
    "AdaptiveJobContext",
    "AdaptiveLifecycleManager",
    "AdaptiveTuner",
    "EvictionRecord",
    "JobObservation",
    "LIFECYCLE_PROPERTY",
    "LifecycleReport",
    "evict_under_pressure",
    "BlockPlan",
    "BlockScanResult",
    "PendingIndexBuild",
    "TextScanResult",
    "VectorizedExecutor",
    "clause_mask",
    "commit_adaptive_builds",
    "kernels",
    "vectorized_filter",
    "PhysicalPlanner",
    "QueryPlan",
    "choose_indexed_host",
]
