"""Columnar predicate kernels: one dispatch point, two backends, identical semantics.

The vectorized executor used to evaluate predicates with ``list[bool]`` masks — one Python
list per clause, AND-ed pairwise, with an O(n) ``any(mask)`` pass per clause on top.  This
module replaces that pipeline with two interchangeable backends behind one dispatch function
(:func:`filter_range`):

- **python** — the reference backend, pure stdlib.  The first clause is evaluated over the
  candidate window in a single comprehension that emits *surviving row positions* directly;
  every later clause refines that position list by probing only the survivors.  This is the
  bytearray-mask pipeline collapsed to its support: representing the mask by the positions of
  its set bits both tracks the surviving-row count for free (``len(positions)``, no ``any``
  scan) and makes each subsequent clause O(survivors) instead of O(window).  The explicit
  bytearray form is kept as :func:`clause_mask_bytes` for callers that want a materialized
  mask.
- **numpy** — an optional fast path used when numpy is importable and every filter column of
  the block has a typed ``array`` representation (:meth:`repro.layouts.pax.PaxBlock.typed_column_at`).
  Columns are wrapped zero-copy via ``numpy.frombuffer`` over the array's ``memoryview``,
  clauses become vectorized comparisons, and masks are AND-ed as boolean arrays.  The backend
  refuses (falls back to the reference backend) whenever exact agreement with Python
  comparison semantics is not guaranteed — non-numeric columns, operands outside the int64
  range, or int/float cross-comparisons past 2**53 where float64 rounding could flip a bound.

Both backends are bit-for-bit equivalent by construction and by test
(``tests/test_engine_kernels.py`` cross-checks them against each other and against the
row-at-a-time evaluation on randomized blocks).  Select the backend globally with
:func:`set_backend` / the ``REPRO_KERNELS`` environment variable, or temporarily with
:func:`use_backend`; the default is numpy when available.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

if TYPE_CHECKING:  # imported lazily at runtime to keep this module import-light
    from repro.hail.predicate import Comparison, Predicate
    from repro.layouts.pax import PaxBlock
    from repro.layouts.schema import Schema

try:  # pragma: no cover - exercised indirectly via the backend tests
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less environments (e.g. CI)
    _np = None

#: True when the numpy fast path is importable in this interpreter.
HAVE_NUMPY: bool = _np is not None

#: Largest integer magnitude a float64 represents exactly; int/float cross-comparisons past
#: this bound may round differently under numpy than under Python and force the fallback.
_EXACT_FLOAT_INT = 2**53
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1

_backend: str = "python"


def _default_backend() -> str:
    """The backend this process starts with: ``REPRO_KERNELS`` or numpy-if-available."""
    requested = os.environ.get("REPRO_KERNELS", "").strip().lower()
    if requested in ("python", "numpy"):
        return requested
    return "numpy" if HAVE_NUMPY else "python"


def active_backend() -> str:
    """The backend :func:`filter_range` currently dispatches to (``"numpy"`` or ``"python"``)."""
    return _backend


def set_backend(name: str) -> None:
    """Select the kernel backend globally (``"numpy"`` or ``"python"``).

    Requesting numpy without numpy installed raises — silent degradation would make benchmark
    numbers lie about what they measured.
    """
    global _backend
    if name not in ("python", "numpy"):
        raise ValueError(f"unknown kernel backend {name!r}; choose 'python' or 'numpy'")
    if name == "numpy" and not HAVE_NUMPY:
        raise RuntimeError("numpy backend requested but numpy is not importable")
    _backend = name


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Temporarily switch the kernel backend (the differential tests' entry point)."""
    previous = _backend
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


set_backend(_default_backend())


# --------------------------------------------------------------------------- mask kernels
def clause_mask_bytes(clause: "Comparison", values: Sequence) -> bytearray:
    """One comparison clause over a column slice as a bytearray mask (1 = match).

    The materialized-mask form of the reference backend: a ``bytearray`` is the densest
    mutable mask Python offers (one byte per row, C-speed ``bytes`` conversion), and callers
    can AND masks in place.  The position-list pipeline below is this mask collapsed to its
    set bits; both views are kept so tests can cross-check them.
    """
    op = clause.op.value
    if op == "between":
        low, high = clause.operands
        return bytearray(low <= value <= high for value in values)
    operand = clause.operands[0]
    if op == "=":
        return bytearray(value == operand for value in values)
    if op == "<":
        return bytearray(value < operand for value in values)
    if op == "<=":
        return bytearray(value <= operand for value in values)
    if op == ">":
        return bytearray(value > operand for value in values)
    if op == ">=":
        return bytearray(value >= operand for value in values)
    raise ValueError(f"unsupported operator {clause.op!r} in vectorized evaluation")


# --------------------------------------------------------------------------- dispatch
def filter_range(
    pax: "PaxBlock",
    predicate: Optional["Predicate"],
    schema: "Schema",
    start: int,
    end: int,
) -> list[int]:
    """Row ids in ``[start, end)`` satisfying ``predicate``, via the active backend.

    ``predicate=None`` selects the whole window.  The numpy backend silently defers to the
    reference backend for windows it cannot evaluate with guaranteed-identical semantics
    (non-numeric columns, out-of-range operands); results are backend-independent either way.
    """
    if predicate is None or start >= end:
        return list(range(start, end))
    if _backend == "numpy":
        result = _filter_range_numpy(pax, predicate, schema, start, end)
        if result is not None:
            return result
    return _filter_range_python(pax, predicate, schema, start, end)


def filter_ranges(
    pax: "PaxBlock",
    predicate: Optional["Predicate"],
    schema: "Schema",
    windows: Sequence[tuple[int, int]],
) -> list[int]:
    """Row ids satisfying ``predicate`` across several disjoint ascending row windows.

    The zone-map pruning entry point: the executor hands over only the windows whose
    partitions may match, and the concatenation of per-window results is in ascending row
    order because the windows are.
    """
    matching: list[int] = []
    for start, end in windows:
        matching.extend(filter_range(pax, predicate, schema, start, end))
    return matching


# --------------------------------------------------------------------------- python backend
def _filter_range_python(
    pax: "PaxBlock", predicate: "Predicate", schema: "Schema", start: int, end: int
) -> list[int]:
    """Reference backend: survivor-position refinement, operators resolved once per clause.

    Clause one scans its window exactly once and emits absolute row ids; clause k probes only
    the rows that survived clauses 1..k-1.  The surviving-row count is ``len(positions)`` —
    no separate ``any(mask)`` pass — and an empty survivor list short-circuits the remaining
    clauses.
    """
    positions: Optional[list[int]] = None
    for clause in predicate.clauses:
        column = pax.columns[clause.attribute_index(schema)]
        op = clause.op.value
        if positions is None:
            window = column[start:end]
            if op == "between":
                low, high = clause.operands
                positions = [i for i, v in enumerate(window, start) if low <= v <= high]
            elif op == "=":
                x = clause.operands[0]
                positions = [i for i, v in enumerate(window, start) if v == x]
            elif op == "<":
                x = clause.operands[0]
                positions = [i for i, v in enumerate(window, start) if v < x]
            elif op == "<=":
                x = clause.operands[0]
                positions = [i for i, v in enumerate(window, start) if v <= x]
            elif op == ">":
                x = clause.operands[0]
                positions = [i for i, v in enumerate(window, start) if v > x]
            elif op == ">=":
                x = clause.operands[0]
                positions = [i for i, v in enumerate(window, start) if v >= x]
            else:
                raise ValueError(f"unsupported operator {clause.op!r} in vectorized evaluation")
        else:
            if op == "between":
                low, high = clause.operands
                positions = [i for i in positions if low <= column[i] <= high]
            elif op == "=":
                x = clause.operands[0]
                positions = [i for i in positions if column[i] == x]
            elif op == "<":
                x = clause.operands[0]
                positions = [i for i in positions if column[i] < x]
            elif op == "<=":
                x = clause.operands[0]
                positions = [i for i in positions if column[i] <= x]
            elif op == ">":
                x = clause.operands[0]
                positions = [i for i in positions if column[i] > x]
            elif op == ">=":
                x = clause.operands[0]
                positions = [i for i in positions if column[i] >= x]
            else:
                raise ValueError(f"unsupported operator {clause.op!r} in vectorized evaluation")
        if not positions:
            return []
    return positions if positions is not None else list(range(start, end))


# --------------------------------------------------------------------------- numpy backend
def _operand_exact(operand, typecode: str) -> bool:
    """Is comparing ``operand`` against a ``typecode`` column exact under float64/int64?"""
    if isinstance(operand, bool) or not isinstance(operand, (int, float)):
        return False
    if isinstance(operand, int):
        if typecode == "q":
            return _INT64_MIN <= operand <= _INT64_MAX
        # Float column: the int operand is converted to float64 — exact only below 2**53.
        return -_EXACT_FLOAT_INT <= operand <= _EXACT_FLOAT_INT
    # Float operand against an int64 column: numpy converts the *column* to float64, which
    # rounds values past 2**53; the caller separately bounds the column (see below).
    return True


def _filter_range_numpy(
    pax: "PaxBlock", predicate: "Predicate", schema: "Schema", start: int, end: int
) -> Optional[list[int]]:
    """Numpy fast path, or ``None`` when exact agreement with Python cannot be guaranteed."""
    np = _np
    mask = None
    for clause in predicate.clauses:
        typed = pax.typed_column_at(clause.attribute_index(schema))
        if typed is None:
            return None  # non-numeric (or overflowing) column: whole predicate falls back
        typecode = typed.typecode
        operands = clause.operands
        if not all(_operand_exact(operand, typecode) for operand in operands):
            return None
        if typecode == "q" and any(isinstance(operand, float) for operand in operands):
            # int64 column compared against a float operand promotes the column to float64;
            # only exact when every column value fits in 2**53 (PaxBlock tracks the bound).
            if not pax.int_column_fits_float(clause.attribute_index(schema)):
                return None
        dtype = np.int64 if typecode == "q" else np.float64
        column = np.frombuffer(typed, dtype=dtype)[start:end]
        op = clause.op.value
        if op == "between":
            low, high = operands
            bits = (column >= low) & (column <= high)
        elif op == "=":
            bits = column == operands[0]
        elif op == "<":
            bits = column < operands[0]
        elif op == "<=":
            bits = column <= operands[0]
        elif op == ">":
            bits = column > operands[0]
        elif op == ">=":
            bits = column >= operands[0]
        else:
            raise ValueError(f"unsupported operator {clause.op!r} in vectorized evaluation")
        mask = bits if mask is None else (mask & bits)
        if not mask.any():
            return []
    if mask is None:
        return list(range(start, end))
    return (np.flatnonzero(mask) + start).tolist()
