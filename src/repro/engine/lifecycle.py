"""Adaptive-index lifecycle management: eviction, budget auto-tuning, steady state.

Adaptive (lazy) indexing (:mod:`repro.engine.adaptive`) converges a deployment to the indexes
its workload actually needs — but left alone, adaptive replicas accumulate forever and the
``adaptive_offer_rate`` / ``adaptive_budget_per_job`` knobs stay whatever the operator guessed.
This module closes both loops:

- :class:`AdaptiveTuner` — a feedback controller replacing the static knobs.  It keeps a running
  ledger of observed per-build cost (from the executor's charged build seconds) versus measured
  scan savings (the executor's counterfactual "what would this block have cost as a scan?"),
  raises the offer rate while adaptive indexes pay for themselves, decays it to zero on
  index-hostile workloads, and sizes the per-job build budget so indexing overhead stays below a
  configured fraction of a job's useful work.
- :func:`evict_under_pressure` — the eviction policy.  Every node gets a byte budget for the
  *adaptive* replicas it hosts (primary, upload-time data never counts): a node whose adaptive
  footprint — measured from the namenode's ``Dir_rep`` — exceeds the
  :class:`~repro.cluster.disk.DiskPressurePolicy` high watermark drops its least-recently-used
  adaptive replicas (ordered by the planner's per-replica index-usage statistics kept in the
  namenode) until the footprint falls below the low watermark.  Upload-time indexes are never
  evicted, a block's last alive replica is never dropped, and ``Dir_rep`` entry + stored
  replica are removed together, so eviction can never leave half-removed metadata behind.
- :class:`PlacementBalancer` — the cluster-wide placement repair loop.  Eviction and node
  failures leave *coverage holes* (blocks whose only adaptive index was reclaimed or died with
  its host) and *placement skew* (adaptive replicas and their index traffic piling up on a few
  nodes).  The balancer re-creates adaptive copies for demanded attributes whose coverage was
  lost, and migrates adaptive replicas off hot nodes when per-node adaptive-byte or index-use
  skew exceeds a watermark — never violating replication floors (it only adds, or moves
  add-before-remove) nor disk budgets (placements stay under the pressure policy's low
  watermark, so they can never trigger the evictor they feed).
- :class:`AdaptiveLifecycleManager` — the per-deployment owner of all three, invoked by the
  MapReduce runner once per job (after the failure-safe commit of staged builds).

The tuner optionally keeps **per-attribute ledgers** (:class:`AttributeLedger`): instead of one
global offer rate, each filter attribute earns its own rate from its own cost/benefit slice, so
offers are steered toward the attributes actually saving scan seconds while index-hostile
attributes decay to zero individually.

All of this is opt-in: without the :class:`~repro.hail.config.HailConfig` lifecycle knobs the
manager is never created and behaviour is bit-identical to plain adaptive indexing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from repro.cluster.disk import DiskPressurePolicy

if TYPE_CHECKING:  # only for annotations: keep this module import-light
    from repro.cluster.costmodel import CostModel
    from repro.hdfs.filesystem import Hdfs
    from repro.mapreduce.counters import Counters

#: Key under which the deployment's :class:`AdaptiveLifecycleManager` travels in
#: ``JobConf.properties`` (installed by ``HailSystem``, consulted by the runner post-job).
LIFECYCLE_PROPERTY = "hail.adaptive.lifecycle"


# --------------------------------------------------------------------------- observations
@dataclass(frozen=True)
class JobObservation:
    """What one finished job tells the tuner, assembled from the job's counters.

    Attributes
    ----------
    builds_committed:
        Adaptive index builds the job's surviving attempts registered.
    build_seconds:
        Simulated seconds those builds charged on top of their scans (the cost side).
    adaptive_uses:
        Blocks the job answered via a previously built *adaptive* index.
    saved_seconds:
        Measured scan savings of those uses: per block, the executor's counterfactual scan
        cost minus the actual index-scan cost (the benefit side).
    fallback_blocks:
        Blocks the job answered without any index — the pool future builds could convert.
    record_reader_seconds:
        The job's *useful* RecordReader seconds: the runner passes total RecordReader time
        minus every staged build's seconds (committed or not — dropped builds spent their
        time too), and this sizes the build budget.
    builds_by_attribute / build_seconds_by_attribute / uses_by_attribute /
    saved_seconds_by_attribute / fallbacks_by_attribute:
        Per-attribute slices of the five quantities above (from the ``COUNTER[attr]``
        counters) — what the per-attribute tuner ledgers and the placement balancer's demand
        tracking consume.  Empty dicts for jobs that predate the per-attribute counters.
    tenant:
        The tenant whose job produced this observation (``None`` for serial, single-tenant
        runs).  A tuner shared by several sessions of one deployment records it per report,
        so operators can see which tenants drove convergence.
    """

    builds_committed: int = 0
    build_seconds: float = 0.0
    adaptive_uses: int = 0
    saved_seconds: float = 0.0
    fallback_blocks: int = 0
    record_reader_seconds: float = 0.0
    builds_by_attribute: dict = field(default_factory=dict)
    build_seconds_by_attribute: dict = field(default_factory=dict)
    uses_by_attribute: dict = field(default_factory=dict)
    saved_seconds_by_attribute: dict = field(default_factory=dict)
    fallbacks_by_attribute: dict = field(default_factory=dict)
    tenant: Optional[str] = None

    @classmethod
    def from_counters(
        cls,
        counters: "Counters",
        useful_reader_seconds: float,
        tenant: Optional[str] = None,
    ) -> "JobObservation":
        """Snapshot the adaptive-indexing counters of one job.

        ``useful_reader_seconds`` is build-free by contract: the runner already subtracted
        the staged builds' seconds from the surviving attempts' RecordReader time.
        """
        from repro.mapreduce.counters import Counters

        return cls(
            tenant=tenant,
            builds_committed=int(counters.value(Counters.ADAPTIVE_INDEXES_COMMITTED)),
            build_seconds=counters.value(Counters.ADAPTIVE_BUILD_SECONDS),
            adaptive_uses=int(counters.value(Counters.ADAPTIVE_INDEX_USES)),
            saved_seconds=counters.value(Counters.ADAPTIVE_SAVED_SECONDS),
            fallback_blocks=int(counters.value(Counters.SCAN_FALLBACK_BLOCKS)),
            record_reader_seconds=max(0.0, useful_reader_seconds),
            builds_by_attribute={
                attr: int(count)
                for attr, count in counters.by_attribute(
                    Counters.ADAPTIVE_INDEXES_COMMITTED
                ).items()
            },
            build_seconds_by_attribute=counters.by_attribute(Counters.ADAPTIVE_BUILD_SECONDS),
            uses_by_attribute={
                attr: int(count)
                for attr, count in counters.by_attribute(Counters.ADAPTIVE_INDEX_USES).items()
            },
            saved_seconds_by_attribute=counters.by_attribute(Counters.ADAPTIVE_SAVED_SECONDS),
            fallbacks_by_attribute={
                attr: int(count)
                for attr, count in counters.by_attribute(Counters.SCAN_FALLBACK_BLOCKS).items()
            },
        )

    @property
    def active_attributes(self) -> set:
        """Attributes this job touched adaptively (built, used an index, or fell back)."""
        return (
            set(self.builds_by_attribute)
            | set(self.uses_by_attribute)
            | set(self.fallbacks_by_attribute)
        )


# --------------------------------------------------------------------------- the tuner
@dataclass
class AttributeLedger:
    """One attribute's slice of the tuner state: its own offer rate and payback ledger.

    With per-attribute tuning enabled, every filter attribute the workload touches gets one of
    these, updated from the ``COUNTER[attr]`` slices of each :class:`JobObservation` under the
    same raise/decay/probe control law the global tuner applies — so an attribute whose
    adaptive indexes save scan seconds converges at full speed while a hostile attribute's
    rate decays to zero without dragging the profitable one down with it.
    """

    offer_rate: float = 0.5
    jobs_observed: int = 0
    jobs_since_build: int = 0
    total_build_seconds: float = 0.0
    total_saved_seconds: float = 0.0


@dataclass
class AdaptiveTuner:
    """Feedback controller for ``adaptive_offer_rate`` and ``adaptive_budget_per_job``.

    The control law works off one :class:`JobObservation` per job:

    - **raise** — when the job's measured savings exceed its build cost (adaptive indexes are
      paying for themselves), the offer rate grows multiplicatively toward 1.0 so convergence
      accelerates;
    - **decay** — when a job neither builds, uses an adaptive index, nor scans (everything the
      workload touches is already covered — the "index-hostile" steady state of random
      predicates over covered attributes), or when the cumulative ledger shows builds not
      paying back after a grace period, the offer rate shrinks multiplicatively and snaps to
      0.0 below ``offer_floor`` so a hostile workload stops paying any build cost at all;
    - **probe** — when fallback scans reappear after the rate decayed away (the workload
      shifted to an uncovered attribute), the rate is restored to ``min_offer_rate`` so the
      controller can re-learn.  Probing happens immediately while the ledger is healthy, and
      after ``probe_cooldown`` build-free jobs otherwise — an unpaid ledger slows probing
      down but can never freeze the controller at zero forever (the debt is stale precisely
      because nothing has been built for a while).

    The budget side bounds the indexing penalty of any single job: from the EMA of per-build
    cost and per-job useful work, the tuner grants as many builds as fit into
    ``overhead_fraction`` of a job's RecordReader time (at least ``min_budget`` so convergence
    never stalls completely).
    """

    offer_rate: float = 0.5
    budget: Optional[int] = None
    overhead_fraction: float = 0.25
    increase_factor: float = 1.5
    decay_factor: float = 0.5
    min_offer_rate: float = 0.05
    offer_floor: float = 0.01
    payback_fraction: float = 0.5
    grace_jobs: int = 2
    probe_cooldown: int = 4
    min_budget: int = 1
    ema_alpha: float = 0.3
    #: Per-job decay of the payback ledger: the cost/benefit totals form a sliding window of
    #: roughly ``1 / (1 - ledger_decay)`` jobs rather than a lifetime sum, so stale credit
    #: from a long profitable history cannot mask a hostile workload shift indefinitely (nor
    #: can ancient debt outlaw probing forever).
    ledger_decay: float = 0.9

    #: Split the payback ledger per filter attribute (:class:`AttributeLedger`): offers are
    #: then steered per attribute via ``AdaptiveJobContext.attribute_offer_rates`` while the
    #: global rate keeps serving as the starting point for attributes never seen before.
    per_attribute: bool = False

    jobs_observed: int = 0
    jobs_since_build: int = 0
    total_build_seconds: float = 0.0
    total_saved_seconds: float = 0.0
    build_cost_ema: Optional[float] = None
    reader_seconds_ema: Optional[float] = None
    ledgers: dict = field(default_factory=dict)

    def observe(self, observation: JobObservation) -> None:
        """Fold one finished job into the ledger and update both knobs."""
        self.jobs_observed += 1
        self.jobs_since_build = 0 if observation.builds_committed else self.jobs_since_build + 1
        self.total_build_seconds = (
            self.ledger_decay * self.total_build_seconds + observation.build_seconds
        )
        self.total_saved_seconds = (
            self.ledger_decay * self.total_saved_seconds + observation.saved_seconds
        )
        if observation.builds_committed:
            per_build = observation.build_seconds / observation.builds_committed
            self.build_cost_ema = self._blend(self.build_cost_ema, per_build)
        if observation.record_reader_seconds > 0:
            self.reader_seconds_ema = self._blend(
                self.reader_seconds_ema, observation.record_reader_seconds
            )
        self._update_offer_rate(observation)
        self._update_budget()
        if self.per_attribute:
            self._update_ledgers(observation)

    def attribute_rates(self) -> dict[str, float]:
        """The live per-attribute offer rates (empty unless ``per_attribute`` tuning is on)."""
        return {attribute: ledger.offer_rate for attribute, ledger in sorted(self.ledgers.items())}

    # ------------------------------------------------------------------ internals
    def _blend(self, ema: Optional[float], sample: float) -> float:
        if ema is None:
            return sample
        return (1.0 - self.ema_alpha) * ema + self.ema_alpha * sample

    @property
    def _payback_ok(self) -> bool:
        """True while recent savings keep up with recent build cost (decayed-window totals)."""
        if self.total_build_seconds <= 0.0:
            return True
        return self.total_saved_seconds >= self.payback_fraction * self.total_build_seconds

    def _update_offer_rate(self, observation: JobObservation) -> None:
        if observation.saved_seconds > observation.build_seconds and observation.saved_seconds > 0:
            self.offer_rate = min(
                1.0, max(self.offer_rate, self.min_offer_rate) * self.increase_factor
            )
            return
        idle = (
            observation.builds_committed == 0
            and observation.adaptive_uses == 0
            and observation.fallback_blocks == 0
        )
        unpaid = (
            observation.builds_committed > 0
            and not self._payback_ok
            and self.jobs_observed > self.grace_jobs
        )
        if idle or unpaid:
            self.offer_rate *= self.decay_factor
            if self.offer_rate < self.offer_floor:
                self.offer_rate = 0.0
        elif (
            observation.fallback_blocks > 0
            and self.offer_rate < self.min_offer_rate
            and (self._payback_ok or self.jobs_since_build >= self.probe_cooldown)
        ):
            # Scans reappeared: probe cheaply.  An unpaid ledger delays the probe by
            # ``probe_cooldown`` build-free jobs but never blocks it forever — with the rate
            # at zero no builds ever run, so the debt would otherwise be frozen stale and
            # the controller stuck in an absorbing state.
            self.offer_rate = self.min_offer_rate

    def _update_budget(self) -> None:
        if self.build_cost_ema is None or self.build_cost_ema <= 0.0:
            return  # no build observed yet: keep the budget unlimited until the first sample
        if self.reader_seconds_ema is None or self.reader_seconds_ema <= 0.0:
            return
        tolerated = self.overhead_fraction * self.reader_seconds_ema
        self.budget = max(self.min_budget, int(tolerated / self.build_cost_ema))

    def _update_ledgers(self, observation: JobObservation) -> None:
        """Apply the raise/decay/probe law per attribute, on that attribute's counter slice.

        An attribute the job did not touch at all counts as *idle* for its ledger (its rate
        decays), which is what retargets the offer budget after a workload shift: the old
        attribute's rate sinks while the newly filtered attribute's rate climbs on its own
        savings.  Attributes never seen before start from the tuner's current global rate.
        """
        for attribute in sorted(observation.active_attributes | set(self.ledgers)):
            ledger = self.ledgers.get(attribute)
            if ledger is None:
                ledger = AttributeLedger(offer_rate=self.offer_rate)
                self.ledgers[attribute] = ledger
            builds = observation.builds_by_attribute.get(attribute, 0)
            build_seconds = observation.build_seconds_by_attribute.get(attribute, 0.0)
            uses = observation.uses_by_attribute.get(attribute, 0)
            saved_seconds = observation.saved_seconds_by_attribute.get(attribute, 0.0)
            fallbacks = observation.fallbacks_by_attribute.get(attribute, 0)

            ledger.jobs_observed += 1
            ledger.jobs_since_build = 0 if builds else ledger.jobs_since_build + 1
            ledger.total_build_seconds = (
                self.ledger_decay * ledger.total_build_seconds + build_seconds
            )
            ledger.total_saved_seconds = (
                self.ledger_decay * ledger.total_saved_seconds + saved_seconds
            )
            payback_ok = (
                ledger.total_build_seconds <= 0.0
                or ledger.total_saved_seconds
                >= self.payback_fraction * ledger.total_build_seconds
            )

            if saved_seconds > build_seconds and saved_seconds > 0:
                ledger.offer_rate = min(
                    1.0, max(ledger.offer_rate, self.min_offer_rate) * self.increase_factor
                )
                continue
            idle = builds == 0 and uses == 0 and fallbacks == 0
            unpaid = builds > 0 and not payback_ok and ledger.jobs_observed > self.grace_jobs
            if idle or unpaid:
                ledger.offer_rate *= self.decay_factor
                if ledger.offer_rate < self.offer_floor:
                    ledger.offer_rate = 0.0
            elif (
                fallbacks > 0
                and ledger.offer_rate < self.min_offer_rate
                and (payback_ok or ledger.jobs_since_build >= self.probe_cooldown)
            ):
                ledger.offer_rate = self.min_offer_rate


# --------------------------------------------------------------------------- eviction
@dataclass(frozen=True)
class EvictionRecord:
    """One adaptive replica reclaimed by disk-pressure eviction.

    ``downgraded`` tells the two reclamation modes apart: an adaptive replica that displaced a
    plain replica at commit time is *downgraded* back to a plain, unindexed replica (the block
    keeps its copy on the node, only the index is reclaimed), whereas a replica that was added
    as an extra copy is deleted outright.  ``freed_bytes`` is the replica's footprint leaving
    the node's *adaptive* byte budget in both cases.
    """

    block_id: int
    datanode_id: int
    attribute: str
    freed_bytes: float
    use_count: int
    last_used_tick: int
    downgraded: bool = False


def evict_under_pressure(hdfs: "Hdfs", policy: DiskPressurePolicy) -> list[EvictionRecord]:
    """Evict least-recently-used adaptive replicas from every node over its high watermark.

    Pressure is measured against each node's **adaptive footprint** — the on-disk bytes of the
    adaptive replicas ``Dir_rep`` registers on it (:meth:`NameNode.adaptive_bytes_on`).  The
    policy's capacity is thus a per-node budget for opportunistic storage: primary, upload-time
    replicas can never create (nor be consumed by) adaptive-index pressure.

    The invariants the eviction loop maintains (and the lifecycle tests assert):

    - only replicas whose ``Dir_rep`` entry carries ``origin="adaptive"`` are candidates —
      upload-time indexes are never evicted, whatever the pressure;
    - the block's data always survives: an adaptive replica that *displaced* a plain replica
      at commit time is **downgraded** back to a plain, unindexed replica (only the index is
      reclaimed, the replication factor is untouched), and an extra adaptive copy is deleted
      outright only while the block has another alive replica — a block's last alive replica
      is never dropped, whatever the pressure;
    - per reclamation, ``Dir_rep``, ``Dir_block`` and the stored replica change together, so
      no half-removed state can survive, and an eviction tombstone is recorded so the planner
      can explain the resulting fallbacks as "evicted (disk pressure on dnN)";
    - candidates are ordered least-recently-used first (by the namenode's planner-maintained
      index-usage ticks, ties broken by lower use count, then block id for determinism), and
      eviction stops as soon as the node is back under its low watermark.
    """
    records: list[EvictionRecord] = []
    if not policy.enabled:
        return records
    namenode = hdfs.namenode
    # One Dir_rep pass for every node's footprint: this hook runs after every job, so it must
    # cost next to nothing when nothing is under pressure (or nothing is adaptive at all).
    footprints = namenode.adaptive_bytes_by_node()
    for node in hdfs.cluster.alive_nodes:
        used = footprints.get(node.node_id, 0)
        if not policy.under_pressure(used):
            continue
        to_free = policy.bytes_to_free(used)
        datanode = hdfs.datanode(node.node_id)
        candidates = []
        for block_id in datanode.block_ids():
            info = namenode.replica_info(block_id, node.node_id)
            if info is None or not getattr(info, "is_adaptive", False):
                continue
            use_count, last_tick = namenode.index_usage(block_id, node.node_id)
            candidates.append((last_tick, use_count, block_id, info))
        candidates.sort()
        freed = 0.0
        for last_tick, use_count, block_id, info in candidates:
            if freed >= to_free:
                break
            downgrade = getattr(info, "displaced_plain_replica", False)
            if not downgrade:
                other_alive = [
                    datanode_id
                    for datanode_id in namenode.block_datanodes(block_id, alive_only=True)
                    if datanode_id != node.node_id
                ]
                if not other_alive:
                    continue  # never drop the block's last alive replica
            freed_bytes = float(info.size_on_disk_bytes)
            namenode.record_index_eviction(block_id, info.indexed_attribute, node.node_id)
            if downgrade:
                _downgrade_replica(hdfs, node.node_id, block_id, info)
            else:
                namenode.unregister_replica(block_id, node.node_id)
                datanode.delete_replica(block_id)
            freed += freed_bytes
            records.append(
                EvictionRecord(
                    block_id=block_id,
                    datanode_id=node.node_id,
                    attribute=info.indexed_attribute,
                    freed_bytes=freed_bytes,
                    use_count=use_count,
                    last_used_tick=last_tick,
                    downgraded=downgrade,
                )
            )
            if hdfs.persist is not None:
                # Per-eviction journal sync: the downgrade/delete and its tombstone become
                # durable together; a crash mid-pass loses later evictions wholesale.
                hdfs.persist.sync_block(hdfs, block_id, site="mid_eviction")
    return records


def _downgrade_replica(hdfs: "Hdfs", datanode_id: int, block_id: int, info) -> None:
    """Strip the adaptive index off a replica, leaving a plain copy of the block's data.

    The replica's PAX data is kept (it displaced the node's plain replica at commit time, so
    deleting it would shrink the block's replication factor); the clustered index and the
    ``Dir_rep`` index metadata are dropped, and the entry's origin becomes ``"evicted"`` so
    the replica no longer counts against (or can be reclaimed from) the adaptive byte budget.
    """
    from repro.hail.hail_block import HailBlock
    from repro.hail.replica_info import HailBlockReplicaInfo
    from repro.hdfs.block import Replica

    datanode = hdfs.datanode(datanode_id)
    hdfs.namenode.reset_index_usage(block_id, datanode_id)
    payload = datanode.replica(block_id).payload
    plain_block = HailBlock(
        payload.pax,
        None,
        None,
        bad_lines=payload.bad_lines,
        partition_size=payload.partition_size,
        logical_partition_size=payload.logical_partition_size,
    )
    plain_block.pax_layout = payload.pax_layout
    datanode.delete_replica(block_id)
    datanode.store_replica(
        Replica(block_id=block_id, datanode_id=datanode_id, payload=plain_block)
    )
    hdfs.namenode.register_replica_info(
        block_id,
        datanode_id,
        HailBlockReplicaInfo(
            datanode_id=datanode_id,
            sort_attribute=None,
            indexed_attribute=None,
            index_size_bytes=0,
            block_size_bytes=plain_block.size_bytes(),
            num_records=info.num_records,
            pax_layout=info.pax_layout,
            origin="evicted",
            zone_ranges=plain_block.zone_ranges(),
        ),
    )


# --------------------------------------------------------------------------- placement
def adaptive_placement_stats(hdfs: "Hdfs") -> dict[int, dict]:
    """Per alive node: adaptive byte footprint, index-use total, and the replicas behind them.

    The single namenode walk both the balancer's skew repair and the reporting helper
    :func:`repro.hail.scheduler.adaptive_placement_by_node` are built on — what counts as
    "adaptive" (``Dir_rep`` ``origin="adaptive"``) is decided here exactly once.  Each node's
    ``"replicas"`` list holds ``(last_used_tick, use_count, block_id, info)`` tuples, the LRU
    ordering key shared with eviction.
    """
    namenode = hdfs.namenode
    stats: dict[int, dict] = {
        node.node_id: {"bytes": 0.0, "uses": 0.0, "replicas": []}
        for node in hdfs.cluster.alive_nodes
    }
    for node_id, entry in stats.items():
        datanode = hdfs.datanode(node_id)
        for block_id in datanode.block_ids():
            info = namenode.replica_info(block_id, node_id)
            if info is None or not getattr(info, "is_adaptive", False):
                continue
            use_count, last_tick = namenode.index_usage(block_id, node_id)
            entry["bytes"] += float(info.size_on_disk_bytes)
            entry["uses"] += float(use_count)
            entry["replicas"].append((last_tick, use_count, block_id, info))
    return stats


@dataclass(frozen=True)
class PlacementAction:
    """One repair the :class:`PlacementBalancer` performed after a job.

    ``kind`` is ``"rebuild"`` (an adaptive replica re-created for a block whose index
    coverage was lost to eviction or a node death) or ``"migrate"`` (an adaptive replica
    moved off a hot node by skew repair).  ``seconds`` is the simulated background I/O/CPU
    cost of the action — balancer work runs off the job's critical path, so it is reported
    but never added to a job's runtime.
    """

    kind: str
    block_id: int
    attribute: Optional[str]
    source_datanode: Optional[int]
    target_datanode: int
    bytes_moved: float
    seconds: float
    reason: str = ""


@dataclass
class PlacementBalancer:
    """Cluster-wide repair of adaptive-replica placement: re-replication plus skew repair.

    The balancer runs once per job (after commit and eviction) and performs bounded work:

    - **Re-replication** — for every attribute with *recent demand* (the workload built, used
      or fell back on it within the last ``demand_window`` jobs), blocks whose index coverage
      was **lost** — an eviction tombstone exists, or every replica carrying the index sits on
      a dead node — get a fresh adaptive replica, rebuilt from an alive copy of the block's
      data onto the least-loaded alive node that holds no replica of the block.  At most
      ``rebuilds_per_pass`` per run.  Demand gating is what keeps re-replication and eviction
      from fighting: a *cold* evicted index has no demand, so it is never rebuilt just to be
      evicted again.
    - **Skew repair** — when one node's adaptive byte footprint (or adaptive index-use count)
      exceeds ``skew_high ×`` the alive-node mean, adaptive replicas are migrated to
      underloaded nodes until the node is back under ``skew_low ×`` the mean.  Byte skew
      migrates the *coldest* replicas (reclaim space without disturbing hot traffic); use
      skew migrates the *hottest* (spread the index-scan traffic itself).  Every migration
      must strictly reduce the hot/cold gap (``target + m ≤ source − m``), which rules out
      ping-pong oscillation by construction.

    Invariants, shared with eviction and asserted by the placement tests: replication floors
    are never violated (rebuilds only *add* replicas; migrations add on the target before
    removing from the source), and no placement may lift a node past the pressure policy's
    **low** watermark — the balancer can never push a node into the pressure region that
    would summon the evictor it runs next to.
    """

    pressure: DiskPressurePolicy = field(default_factory=DiskPressurePolicy)
    skew_high: float = 2.0
    skew_low: float = 1.5
    rebuilds_per_pass: int = 2
    migrations_per_pass: int = 4
    #: How many jobs an attribute's demand survives without fresh activity.
    demand_window: int = 4
    #: attribute -> jobs of demand left (refreshed by :meth:`observe`).
    demand: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 1.0 <= self.skew_low <= self.skew_high:
            raise ValueError("skew watermarks must satisfy 1 <= low <= high")

    # ------------------------------------------------------------------ demand tracking
    def observe(self, observation: JobObservation) -> None:
        """Refresh per-attribute demand from one finished job's counter slices."""
        for attribute in list(self.demand):
            self.demand[attribute] -= 1
            if self.demand[attribute] <= 0:
                del self.demand[attribute]
        for attribute in observation.active_attributes:
            self.demand[attribute] = self.demand_window

    # ------------------------------------------------------------------ the per-job pass
    def run(self, hdfs: "Hdfs", cost: Optional["CostModel"] = None) -> list[PlacementAction]:
        """One bounded balancing pass: re-replicate lost coverage, then repair skew."""
        actions = self._re_replicate(hdfs, cost)
        actions.extend(self._repair_skew(hdfs, cost))
        return actions

    # ------------------------------------------------------------------ re-replication
    def _re_replicate(self, hdfs: "Hdfs", cost: Optional["CostModel"]) -> list[PlacementAction]:
        actions: list[PlacementAction] = []
        if not self.demand:
            return actions
        namenode = hdfs.namenode
        footprints = dict(namenode.adaptive_bytes_by_node())
        quota = self.rebuilds_per_pass
        for path in namenode.list_files():
            for block_id in namenode.file_blocks(path):
                if quota <= 0:
                    return actions
                for attribute in sorted(self.demand):
                    if namenode.hosts_with_index(block_id, attribute, alive_only=True):
                        continue  # coverage intact — nothing to repair
                    if not self._coverage_lost(namenode, block_id, attribute):
                        continue  # never built: that is adaptive indexing's job, not repair
                    action = self._rebuild(hdfs, cost, block_id, attribute, footprints)
                    if action is not None:
                        actions.append(action)
                        quota -= 1
                    if quota <= 0:
                        break
        return actions

    @staticmethod
    def _coverage_lost(namenode, block_id: int, attribute: str) -> bool:
        """Did ``(block, attribute)`` *have* an index that eviction or a node death took away?"""
        if namenode.index_eviction(block_id, attribute) is not None:
            return True
        # No alive host (the caller checked); any remaining host with the index is dead.
        return bool(namenode.hosts_with_index(block_id, attribute, alive_only=False))

    def _rebuild(
        self,
        hdfs: "Hdfs",
        cost: Optional["CostModel"],
        block_id: int,
        attribute: str,
        footprints: dict[int, float],
    ) -> Optional[PlacementAction]:
        """Re-create one adaptive replica of ``block_id`` indexed on ``attribute``.

        The index is rebuilt from an alive copy of the block's data (HAIL replicas share
        logical content, so any alive HAIL payload serves as the source) and registered on
        the least-loaded alive node without a replica of the block — the placement both
        restores coverage *and* adds a copy, the re-replication the ROADMAP asked for.
        ``None`` when no source payload, schema attribute, or budget-respecting target
        exists; the next pass retries with whatever changed.
        """
        from repro.hail.hail_block import HailBlock
        from repro.hail.index import HailIndex
        from repro.hail.replica_info import HailBlockReplicaInfo
        from repro.hdfs.block import Replica

        namenode = hdfs.namenode
        source_id, payload = self._source_payload(hdfs, block_id)
        if payload is None:
            return None
        if attribute not in payload.schema.field_names:
            return None
        index, permutation = HailIndex.from_unsorted(
            attribute, payload.pax.column(attribute), partition_size=payload.partition_size
        )
        block = HailBlock(
            payload.pax.reorder(permutation),
            attribute,
            index,
            bad_lines=payload.bad_lines,
            partition_size=payload.partition_size,
            logical_partition_size=payload.logical_partition_size,
        )
        block.pax_layout = payload.pax_layout
        info = HailBlockReplicaInfo(
            datanode_id=-1,  # rewritten below once the target is chosen
            sort_attribute=attribute,
            indexed_attribute=attribute,
            index_size_bytes=block.index_size_bytes(),
            block_size_bytes=block.size_bytes(),
            num_records=block.num_records,
            pax_layout=payload.pax_layout,
            origin="adaptive",
            zone_ranges=block.zone_ranges(),
        )
        target_id = self._choose_target(
            hdfs, block_id, float(info.size_on_disk_bytes), footprints
        )
        displaced = False
        if target_id is None:
            # Every alive node already holds a replica: displace an *unindexed* copy in
            # place, exactly like commit-time placement — the indexed replica replaces the
            # plain one, the replication factor is untouched, and ``displaced_plain_replica``
            # makes a later eviction downgrade it back instead of deleting the copy.
            target_id = self._choose_displacement_target(
                hdfs, block_id, float(info.size_on_disk_bytes), footprints
            )
            if target_id is None:
                return None
            displaced = True
        self._drop_stale_adaptive(hdfs, block_id, attribute)
        info = replace(info, datanode_id=target_id, displaced_plain_replica=displaced)
        if displaced:
            hdfs.datanode(target_id).delete_replica(block_id)
        hdfs.datanode(target_id).store_replica(
            Replica(
                block_id=block_id,
                datanode_id=target_id,
                payload=block,
                sort_attribute=attribute,
                indexed_attribute=attribute,
            )
        )
        namenode.register_replica(block_id, target_id, replica_info=info)
        # A fresh rebuild starts its LRU life warm, exactly like a committed build would.
        namenode.touch_index_usage(block_id, target_id)
        footprints[target_id] = footprints.get(target_id, 0.0) + info.size_on_disk_bytes
        if hdfs.persist is not None:
            # Journal the re-replicated coverage as soon as it is registered.
            hdfs.persist.sync_block(hdfs, block_id, site="mid_rebalance")
        seconds = self._charge_copy(hdfs, cost, source_id, target_id, payload, block, sort=True)
        return PlacementAction(
            kind="rebuild",
            block_id=block_id,
            attribute=attribute,
            source_datanode=source_id,
            target_datanode=target_id,
            bytes_moved=float(info.size_on_disk_bytes),
            seconds=seconds,
            reason="coverage lost (evicted or host died)",
        )

    @staticmethod
    def _source_payload(hdfs: "Hdfs", block_id: int):
        """An alive HAIL payload of ``block_id`` to rebuild from (``(None, None)`` if none)."""
        for host in hdfs.namenode.block_datanodes(block_id, alive_only=True):
            payload = hdfs.datanode(host).replica(block_id).payload
            if hasattr(payload, "pax"):
                return host, payload
        return None, None

    @staticmethod
    def _drop_stale_adaptive(hdfs: "Hdfs", block_id: int, attribute: str) -> None:
        """Garbage-collect dead adaptive replicas before a rebuild (no duplicate on revival)."""
        from repro.engine.adaptive import _drop_stale_adaptive_replicas

        _drop_stale_adaptive_replicas(hdfs, block_id, attribute)

    def _choose_target(
        self,
        hdfs: "Hdfs",
        block_id: int,
        replica_bytes: float,
        footprints: dict[int, float],
    ) -> Optional[int]:
        """Least-loaded alive node without a replica of the block and with budget headroom."""
        holders = set(hdfs.namenode.block_datanodes(block_id, alive_only=False))
        candidates = [
            node.node_id for node in hdfs.cluster.alive_nodes if node.node_id not in holders
        ]
        candidates.sort(key=lambda node_id: (footprints.get(node_id, 0.0), node_id))
        for node_id in candidates:
            if self._within_budget(footprints.get(node_id, 0.0) + replica_bytes):
                return node_id
        return None

    def _choose_displacement_target(
        self,
        hdfs: "Hdfs",
        block_id: int,
        replica_bytes: float,
        footprints: dict[int, float],
    ) -> Optional[int]:
        """Least-loaded alive holder whose replica of the block is *unindexed*.

        The displacement fallback of :meth:`_rebuild` — never a host carrying an index (on
        any attribute): replacing it would trade one index for another, the destruction
        commit-time placement also refuses.
        """
        namenode = hdfs.namenode
        candidates = []
        for node_id in namenode.block_datanodes(block_id, alive_only=True):
            info = namenode.replica_info(block_id, node_id)
            if info is not None and getattr(info, "indexed_attribute", None) is not None:
                continue
            candidates.append(node_id)
        candidates.sort(key=lambda node_id: (footprints.get(node_id, 0.0), node_id))
        for node_id in candidates:
            if self._within_budget(footprints.get(node_id, 0.0) + replica_bytes):
                return node_id
        return None

    def _within_budget(self, projected_bytes: float) -> bool:
        """May a placement leave a node at ``projected_bytes`` of adaptive footprint?

        Placements are held to the pressure policy's **low** watermark — strictly inside the
        hysteresis band — so the balancer can never lift a node into the region where the
        evictor fires (the migrate/evict oscillation the invariant tests rule out).
        """
        if not self.pressure.enabled:
            return True
        return projected_bytes <= self.pressure.low_watermark * self.pressure.capacity_bytes

    # ------------------------------------------------------------------ skew repair
    def _repair_skew(self, hdfs: "Hdfs", cost: Optional["CostModel"]) -> list[PlacementAction]:
        """Drain skewed nodes: triggered above ``skew_high × mean``, drained to ``skew_low``.

        The watermark pair is real hysteresis: crossing the *high* mark starts a node's
        draining episode, and the episode keeps migrating until the node is under the *low*
        mark (or nothing movable is left) — so a repaired node re-enters the danger zone only
        after growing back through the whole band, not on the next build.  Per-node
        statistics are recomputed from the namenode before every migration, so each move acts
        on the placement the previous one actually produced, and the strict-improvement
        condition inside :meth:`_one_migration` guarantees termination without oscillation.
        """
        actions: list[PlacementAction] = []
        quota = self.migrations_per_pass
        for metric in ("bytes", "uses"):
            draining: set[int] = set()
            exhausted: set[int] = set()
            while quota > 0:
                stats = self._adaptive_stats(hdfs)
                if len(stats) < 2:
                    break
                values = {node_id: entry[metric] for node_id, entry in stats.items()}
                mean = sum(values.values()) / len(values)
                if mean <= 0.0:
                    break
                hot_id = self._pick_hot_node(values, mean, draining, exhausted)
                if hot_id is None:
                    break
                action = self._one_migration(hdfs, cost, metric, hot_id, stats, values)
                if action is None:
                    exhausted.add(hot_id)  # nothing movable left: never re-pick this pass
                    continue
                draining.add(hot_id)
                actions.append(action)
                quota -= 1
        return actions

    def _pick_hot_node(
        self,
        values: dict[int, float],
        mean: float,
        draining: set[int],
        exhausted: set[int],
    ) -> Optional[int]:
        """The node to shed from next: over the high mark, or mid-drain and over the low mark."""
        candidates = [
            node_id
            for node_id, value in values.items()
            if node_id not in exhausted
            and (
                value > self.skew_high * mean
                or (node_id in draining and value > self.skew_low * mean)
            )
        ]
        if not candidates:
            return None
        return sorted(candidates, key=lambda node_id: (-values[node_id], node_id))[0]

    def _one_migration(
        self,
        hdfs: "Hdfs",
        cost: Optional["CostModel"],
        metric: str,
        hot_id: int,
        stats: dict[int, dict],
        values: dict[int, float],
    ) -> Optional[PlacementAction]:
        """Migrate one adaptive replica off ``hot_id``, or ``None`` when nothing qualifies.

        The strict-improvement condition (``target + m ≤ source − m``) guarantees each move
        shrinks the hot/cold spread, which is why repeated passes terminate instead of
        oscillating.
        """
        replicas = stats[hot_id]["replicas"]
        if metric == "bytes":
            # Coldest first: reclaim space without disturbing the node's hot index traffic.
            replicas.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        else:
            # Hottest first: spread the index-scan traffic itself.
            replicas.sort(key=lambda entry: (-entry[1], entry[0], entry[2]))
        for last_tick, use_count, block_id, info in replicas:
            moved = float(info.size_on_disk_bytes) if metric == "bytes" else float(use_count)
            if moved <= 0.0:
                continue
            holders = set(hdfs.namenode.block_datanodes(block_id, alive_only=False))
            targets = [
                node_id
                for node_id in values
                if node_id not in holders and node_id != hot_id
            ]
            targets.sort(key=lambda node_id: (values[node_id], node_id))
            for target_id in targets:
                if values[target_id] + moved > values[hot_id] - moved:
                    break  # no strict improvement possible: colder targets are exhausted
                projected = stats[target_id]["bytes"] + info.size_on_disk_bytes
                if not self._within_budget(projected):
                    continue
                seconds = self._migrate(hdfs, cost, block_id, hot_id, target_id, info)
                return PlacementAction(
                    kind="migrate",
                    block_id=block_id,
                    attribute=getattr(info, "indexed_attribute", None),
                    source_datanode=hot_id,
                    target_datanode=target_id,
                    bytes_moved=float(info.size_on_disk_bytes),
                    seconds=seconds,
                    reason=f"{metric} skew on dn{hot_id}",
                )
        return None

    @staticmethod
    def _adaptive_stats(hdfs: "Hdfs") -> dict[int, dict]:
        """Per alive node: adaptive byte footprint, adaptive index-use total, and replicas."""
        return adaptive_placement_stats(hdfs)

    def _migrate(
        self,
        hdfs: "Hdfs",
        cost: Optional["CostModel"],
        block_id: int,
        source_id: int,
        target_id: int,
        info,
    ) -> float:
        """Move one adaptive replica, add-before-remove, LRU history travelling along."""
        namenode = hdfs.namenode
        source = hdfs.datanode(source_id)
        replica = source.replica(block_id)
        hdfs.datanode(target_id).store_replica(replace(replica, datanode_id=target_id))
        namenode.register_replica(
            block_id, target_id, replica_info=replace(info, datanode_id=target_id)
        )
        namenode.transfer_index_usage(block_id, source_id, target_id)
        namenode.unregister_replica(block_id, source_id)
        source.delete_replica(block_id)
        if hdfs.persist is not None:
            # Journal the whole add-before-remove move in one sync: a crash before this
            # point leaves the journal at the pre-migration state, never half-moved.
            hdfs.persist.sync_block(hdfs, block_id, site="mid_rebalance")
        return self._charge_copy(
            hdfs, cost, source_id, target_id, replica.payload, replica.payload, sort=False
        )

    @staticmethod
    def _charge_copy(
        hdfs: "Hdfs",
        cost: Optional["CostModel"],
        source_id: Optional[int],
        target_id: int,
        payload,
        new_block,
        sort: bool,
    ) -> float:
        """Simulated seconds of one balancer copy: read, ship, (re)sort+index, flush.

        Background cost accounting only — reported per action so operators can budget the
        balancer's I/O, never charged to a job's runtime (the work is off the critical path,
        like HDFS re-replication).
        """
        if cost is None or source_id is None:
            return 0.0
        from repro.hdfs.checksum import checksum_file_size

        source_node = hdfs.cluster.node(source_id)
        target_node = hdfs.cluster.node(target_id)
        data_bytes = cost.scale_bytes(float(payload.data_size_bytes()))
        seconds = cost.disk(source_node).sequential_read(data_bytes)
        if source_id != target_id:
            seconds += cost.network.transfer(
                data_bytes,
                source_node.hardware,
                target_node.hardware,
                hdfs.cluster.locality(source_id, target_id),
            )
        cpu = cost.cpu(target_node)
        if sort:
            logical_values = int(cost.scale_count(payload.num_records))
            seconds += cpu.sort_block(logical_values, data_bytes)
            seconds += cpu.build_index(logical_values)
        write_bytes = float(new_block.size_bytes())
        write_bytes += checksum_file_size(write_bytes)
        seconds += cpu.checksum(cost.scale_bytes(float(new_block.size_bytes())))
        seconds += cost.disk(target_node).sequential_write(cost.scale_bytes(write_bytes))
        return seconds


# --------------------------------------------------------------------------- the manager
@dataclass
class LifecycleReport:
    """What the lifecycle manager did after one job."""

    observation: JobObservation
    evicted: list[EvictionRecord] = field(default_factory=list)
    offer_rate: float = 0.0
    budget: Optional[int] = None
    placement: list[PlacementAction] = field(default_factory=list)
    attribute_offer_rates: dict = field(default_factory=dict)

    @property
    def num_evicted(self) -> int:
        """Number of adaptive replicas dropped after this job."""
        return len(self.evicted)

    @property
    def num_rebuilt(self) -> int:
        """Adaptive replicas the placement balancer re-created after this job."""
        return sum(1 for action in self.placement if action.kind == "rebuild")

    @property
    def num_migrated(self) -> int:
        """Adaptive replicas the balancer's skew repair moved after this job."""
        return sum(1 for action in self.placement if action.kind == "migrate")

    @property
    def placement_bytes_moved(self) -> float:
        """Replica bytes the balancer re-created or moved after this job."""
        return sum(action.bytes_moved for action in self.placement)

    @property
    def freed_bytes(self) -> float:
        """Bytes that left the nodes' *adaptive byte budgets* after this job.

        Note this is budget accounting, not physical disk reclaimed: a downgraded replica's
        full footprint leaves the budget while its plain copy stays on disk (only the index
        bytes are physically freed); deleted extra copies free their full footprint.
        """
        return sum(record.freed_bytes for record in self.evicted)


class AdaptiveLifecycleManager:
    """Per-deployment owner of the eviction policy and the knob tuner.

    ``HailSystem`` creates one manager when the config enables eviction and/or auto-tuning,
    installs it into every job's ``JobConf.properties`` under :data:`LIFECYCLE_PROPERTY`, and
    reads :attr:`offer_rate` / :attr:`budget` back when stamping each job's
    :class:`~repro.engine.adaptive.AdaptiveJobContext`.  The MapReduce runner calls
    :meth:`after_job` once per measured job, after the staged builds were committed — so the
    tuner sees exactly what reached the namenode, and eviction acts on post-commit disk usage.
    """

    #: How many of the most recent per-job :class:`LifecycleReport`\ s to retain for
    #: monitoring (``manager.reports``); older reports are discarded so a long-lived
    #: deployment does not grow without bound.
    MAX_REPORTS = 128

    def __init__(
        self,
        pressure: Optional[DiskPressurePolicy] = None,
        tuner: Optional[AdaptiveTuner] = None,
        balancer: Optional[PlacementBalancer] = None,
    ) -> None:
        self.pressure = pressure if pressure is not None else DiskPressurePolicy()
        self.tuner = tuner
        self.balancer = balancer
        self.reports: list[LifecycleReport] = []
        #: Jobs observed per tenant (tagged observations only — serial runs stay untagged).
        #: A deployment shared by several sessions shows here which tenants fed the tuner.
        self.tenant_jobs: dict[str, int] = {}

    @classmethod
    def from_config(cls, config) -> Optional["AdaptiveLifecycleManager"]:
        """Build the manager a :class:`~repro.hail.config.HailConfig` asks for (or ``None``).

        Returns ``None`` unless adaptive indexing plus at least one lifecycle feature
        (eviction, auto-tuning, or the placement balancer) is enabled, so default
        configurations never pay for — or observe — any lifecycle machinery.
        """
        if not config.adaptive_indexing:
            return None
        balancer_on = getattr(config, "placement_balancer", False)
        if not (config.adaptive_eviction or config.adaptive_auto_tune or balancer_on):
            return None
        pressure = DiskPressurePolicy(
            capacity_bytes=config.adaptive_disk_capacity_bytes if config.adaptive_eviction else None,
            high_watermark=config.adaptive_disk_high_watermark,
            low_watermark=config.adaptive_disk_low_watermark,
        )
        tuner = None
        if config.adaptive_auto_tune:
            tuner = AdaptiveTuner(
                offer_rate=config.adaptive_offer_rate,
                budget=config.adaptive_budget_per_job,
                overhead_fraction=config.adaptive_overhead_fraction,
                per_attribute=getattr(config, "adaptive_per_attribute_tune", False),
            )
        balancer = None
        if balancer_on:
            # The balancer shares the eviction budget, so its placements and the evictor's
            # reclamations bound the same per-node adaptive footprint.
            balancer = PlacementBalancer(
                pressure=pressure,
                skew_high=getattr(config, "placement_skew_high", 2.0),
                skew_low=getattr(config, "placement_skew_low", 1.5),
                rebuilds_per_pass=getattr(config, "placement_rebuilds_per_job", 2),
                migrations_per_pass=getattr(config, "placement_migrations_per_job", 4),
            )
        return cls(pressure=pressure, tuner=tuner, balancer=balancer)

    # ------------------------------------------------------------------ knob views
    @property
    def offer_rate(self) -> float:
        """The offer rate jobs should run with right now (tuned, or the static config value)."""
        if self.tuner is None:
            raise AttributeError("auto-tuning is off: read the static config knob instead")
        return self.tuner.offer_rate

    @property
    def budget(self) -> Optional[int]:
        """The per-job build budget jobs should run with right now."""
        if self.tuner is None:
            raise AttributeError("auto-tuning is off: read the static config knob instead")
        return self.tuner.budget

    @property
    def auto_tunes(self) -> bool:
        """True when this manager replaces the static offer/budget knobs with the tuner's."""
        return self.tuner is not None

    # ------------------------------------------------------------------ the per-job hook
    def after_job(
        self,
        hdfs: "Hdfs",
        observation: JobObservation,
        cost: Optional["CostModel"] = None,
    ) -> LifecycleReport:
        """Run the post-job lifecycle pass: tuner, disk pressure, then placement repair.

        The balancer runs *after* eviction on purpose: it sees the holes eviction just tore
        (and the tombstones it left) and repairs within the same job boundary, so coverage
        gaps live for at most one job.  ``cost`` (the runner's cost model) only prices the
        balancer's background I/O for reporting; it never changes what the balancer does.
        """
        if observation.tenant is not None:
            self.tenant_jobs[observation.tenant] = (
                self.tenant_jobs.get(observation.tenant, 0) + 1
            )
        if self.tuner is not None:
            self.tuner.observe(observation)
        evicted = evict_under_pressure(hdfs, self.pressure)
        placement: list[PlacementAction] = []
        if self.balancer is not None:
            self.balancer.observe(observation)
            placement = self.balancer.run(hdfs, cost)
        report = LifecycleReport(
            observation=observation,
            evicted=evicted,
            offer_rate=self.tuner.offer_rate if self.tuner is not None else 0.0,
            budget=self.tuner.budget if self.tuner is not None else None,
            placement=placement,
            attribute_offer_rates=(
                self.tuner.attribute_rates() if self.tuner is not None else {}
            ),
        )
        self.reports.append(report)
        if len(self.reports) > self.MAX_REPORTS:
            del self.reports[: -self.MAX_REPORTS]
        if hdfs.persist is not None:
            # Journal the learned control state the pass just updated — tuner ledgers and
            # balancer demand — so a restored deployment's feedback loops resume from the
            # same knobs instead of re-learning.  Local import: repro.persist imports this
            # module for the tuner dataclasses.
            from repro.persist import codec

            control: dict = {"tuner": codec.encode_tuner(self.tuner)}
            if self.balancer is not None:
                control["demand"] = dict(self.balancer.demand)
            hdfs.persist.sync_control(control)
        return report
