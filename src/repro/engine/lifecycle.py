"""Adaptive-index lifecycle management: eviction, budget auto-tuning, steady state.

Adaptive (lazy) indexing (:mod:`repro.engine.adaptive`) converges a deployment to the indexes
its workload actually needs — but left alone, adaptive replicas accumulate forever and the
``adaptive_offer_rate`` / ``adaptive_budget_per_job`` knobs stay whatever the operator guessed.
This module closes both loops:

- :class:`AdaptiveTuner` — a feedback controller replacing the static knobs.  It keeps a running
  ledger of observed per-build cost (from the executor's charged build seconds) versus measured
  scan savings (the executor's counterfactual "what would this block have cost as a scan?"),
  raises the offer rate while adaptive indexes pay for themselves, decays it to zero on
  index-hostile workloads, and sizes the per-job build budget so indexing overhead stays below a
  configured fraction of a job's useful work.
- :func:`evict_under_pressure` — the eviction policy.  Every node gets a byte budget for the
  *adaptive* replicas it hosts (primary, upload-time data never counts): a node whose adaptive
  footprint — measured from the namenode's ``Dir_rep`` — exceeds the
  :class:`~repro.cluster.disk.DiskPressurePolicy` high watermark drops its least-recently-used
  adaptive replicas (ordered by the planner's per-replica index-usage statistics kept in the
  namenode) until the footprint falls below the low watermark.  Upload-time indexes are never
  evicted, a block's last alive replica is never dropped, and ``Dir_rep`` entry + stored
  replica are removed together, so eviction can never leave half-removed metadata behind.
- :class:`AdaptiveLifecycleManager` — the per-deployment owner of both, invoked by the
  MapReduce runner once per job (after the failure-safe commit of staged builds).

All of this is opt-in: without the :class:`~repro.hail.config.HailConfig` lifecycle knobs the
manager is never created and behaviour is bit-identical to plain adaptive indexing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.cluster.disk import DiskPressurePolicy

if TYPE_CHECKING:  # only for annotations: keep this module import-light
    from repro.hdfs.filesystem import Hdfs
    from repro.mapreduce.counters import Counters

#: Key under which the deployment's :class:`AdaptiveLifecycleManager` travels in
#: ``JobConf.properties`` (installed by ``HailSystem``, consulted by the runner post-job).
LIFECYCLE_PROPERTY = "hail.adaptive.lifecycle"


# --------------------------------------------------------------------------- observations
@dataclass(frozen=True)
class JobObservation:
    """What one finished job tells the tuner, assembled from the job's counters.

    Attributes
    ----------
    builds_committed:
        Adaptive index builds the job's surviving attempts registered.
    build_seconds:
        Simulated seconds those builds charged on top of their scans (the cost side).
    adaptive_uses:
        Blocks the job answered via a previously built *adaptive* index.
    saved_seconds:
        Measured scan savings of those uses: per block, the executor's counterfactual scan
        cost minus the actual index-scan cost (the benefit side).
    fallback_blocks:
        Blocks the job answered without any index — the pool future builds could convert.
    record_reader_seconds:
        The job's *useful* RecordReader seconds: the runner passes total RecordReader time
        minus every staged build's seconds (committed or not — dropped builds spent their
        time too), and this sizes the build budget.
    """

    builds_committed: int = 0
    build_seconds: float = 0.0
    adaptive_uses: int = 0
    saved_seconds: float = 0.0
    fallback_blocks: int = 0
    record_reader_seconds: float = 0.0

    @classmethod
    def from_counters(cls, counters: "Counters", useful_reader_seconds: float) -> "JobObservation":
        """Snapshot the adaptive-indexing counters of one job.

        ``useful_reader_seconds`` is build-free by contract: the runner already subtracted
        the staged builds' seconds from the surviving attempts' RecordReader time.
        """
        from repro.mapreduce.counters import Counters

        return cls(
            builds_committed=int(counters.value(Counters.ADAPTIVE_INDEXES_COMMITTED)),
            build_seconds=counters.value(Counters.ADAPTIVE_BUILD_SECONDS),
            adaptive_uses=int(counters.value(Counters.ADAPTIVE_INDEX_USES)),
            saved_seconds=counters.value(Counters.ADAPTIVE_SAVED_SECONDS),
            fallback_blocks=int(counters.value(Counters.SCAN_FALLBACK_BLOCKS)),
            record_reader_seconds=max(0.0, useful_reader_seconds),
        )


# --------------------------------------------------------------------------- the tuner
@dataclass
class AdaptiveTuner:
    """Feedback controller for ``adaptive_offer_rate`` and ``adaptive_budget_per_job``.

    The control law works off one :class:`JobObservation` per job:

    - **raise** — when the job's measured savings exceed its build cost (adaptive indexes are
      paying for themselves), the offer rate grows multiplicatively toward 1.0 so convergence
      accelerates;
    - **decay** — when a job neither builds, uses an adaptive index, nor scans (everything the
      workload touches is already covered — the "index-hostile" steady state of random
      predicates over covered attributes), or when the cumulative ledger shows builds not
      paying back after a grace period, the offer rate shrinks multiplicatively and snaps to
      0.0 below ``offer_floor`` so a hostile workload stops paying any build cost at all;
    - **probe** — when fallback scans reappear after the rate decayed away (the workload
      shifted to an uncovered attribute), the rate is restored to ``min_offer_rate`` so the
      controller can re-learn.  Probing happens immediately while the ledger is healthy, and
      after ``probe_cooldown`` build-free jobs otherwise — an unpaid ledger slows probing
      down but can never freeze the controller at zero forever (the debt is stale precisely
      because nothing has been built for a while).

    The budget side bounds the indexing penalty of any single job: from the EMA of per-build
    cost and per-job useful work, the tuner grants as many builds as fit into
    ``overhead_fraction`` of a job's RecordReader time (at least ``min_budget`` so convergence
    never stalls completely).
    """

    offer_rate: float = 0.5
    budget: Optional[int] = None
    overhead_fraction: float = 0.25
    increase_factor: float = 1.5
    decay_factor: float = 0.5
    min_offer_rate: float = 0.05
    offer_floor: float = 0.01
    payback_fraction: float = 0.5
    grace_jobs: int = 2
    probe_cooldown: int = 4
    min_budget: int = 1
    ema_alpha: float = 0.3
    #: Per-job decay of the payback ledger: the cost/benefit totals form a sliding window of
    #: roughly ``1 / (1 - ledger_decay)`` jobs rather than a lifetime sum, so stale credit
    #: from a long profitable history cannot mask a hostile workload shift indefinitely (nor
    #: can ancient debt outlaw probing forever).
    ledger_decay: float = 0.9

    jobs_observed: int = 0
    jobs_since_build: int = 0
    total_build_seconds: float = 0.0
    total_saved_seconds: float = 0.0
    build_cost_ema: Optional[float] = None
    reader_seconds_ema: Optional[float] = None

    def observe(self, observation: JobObservation) -> None:
        """Fold one finished job into the ledger and update both knobs."""
        self.jobs_observed += 1
        self.jobs_since_build = 0 if observation.builds_committed else self.jobs_since_build + 1
        self.total_build_seconds = (
            self.ledger_decay * self.total_build_seconds + observation.build_seconds
        )
        self.total_saved_seconds = (
            self.ledger_decay * self.total_saved_seconds + observation.saved_seconds
        )
        if observation.builds_committed:
            per_build = observation.build_seconds / observation.builds_committed
            self.build_cost_ema = self._blend(self.build_cost_ema, per_build)
        if observation.record_reader_seconds > 0:
            self.reader_seconds_ema = self._blend(
                self.reader_seconds_ema, observation.record_reader_seconds
            )
        self._update_offer_rate(observation)
        self._update_budget()

    # ------------------------------------------------------------------ internals
    def _blend(self, ema: Optional[float], sample: float) -> float:
        if ema is None:
            return sample
        return (1.0 - self.ema_alpha) * ema + self.ema_alpha * sample

    @property
    def _payback_ok(self) -> bool:
        """True while recent savings keep up with recent build cost (decayed-window totals)."""
        if self.total_build_seconds <= 0.0:
            return True
        return self.total_saved_seconds >= self.payback_fraction * self.total_build_seconds

    def _update_offer_rate(self, observation: JobObservation) -> None:
        if observation.saved_seconds > observation.build_seconds and observation.saved_seconds > 0:
            self.offer_rate = min(
                1.0, max(self.offer_rate, self.min_offer_rate) * self.increase_factor
            )
            return
        idle = (
            observation.builds_committed == 0
            and observation.adaptive_uses == 0
            and observation.fallback_blocks == 0
        )
        unpaid = (
            observation.builds_committed > 0
            and not self._payback_ok
            and self.jobs_observed > self.grace_jobs
        )
        if idle or unpaid:
            self.offer_rate *= self.decay_factor
            if self.offer_rate < self.offer_floor:
                self.offer_rate = 0.0
        elif (
            observation.fallback_blocks > 0
            and self.offer_rate < self.min_offer_rate
            and (self._payback_ok or self.jobs_since_build >= self.probe_cooldown)
        ):
            # Scans reappeared: probe cheaply.  An unpaid ledger delays the probe by
            # ``probe_cooldown`` build-free jobs but never blocks it forever — with the rate
            # at zero no builds ever run, so the debt would otherwise be frozen stale and
            # the controller stuck in an absorbing state.
            self.offer_rate = self.min_offer_rate

    def _update_budget(self) -> None:
        if self.build_cost_ema is None or self.build_cost_ema <= 0.0:
            return  # no build observed yet: keep the budget unlimited until the first sample
        if self.reader_seconds_ema is None or self.reader_seconds_ema <= 0.0:
            return
        tolerated = self.overhead_fraction * self.reader_seconds_ema
        self.budget = max(self.min_budget, int(tolerated / self.build_cost_ema))


# --------------------------------------------------------------------------- eviction
@dataclass(frozen=True)
class EvictionRecord:
    """One adaptive replica reclaimed by disk-pressure eviction.

    ``downgraded`` tells the two reclamation modes apart: an adaptive replica that displaced a
    plain replica at commit time is *downgraded* back to a plain, unindexed replica (the block
    keeps its copy on the node, only the index is reclaimed), whereas a replica that was added
    as an extra copy is deleted outright.  ``freed_bytes`` is the replica's footprint leaving
    the node's *adaptive* byte budget in both cases.
    """

    block_id: int
    datanode_id: int
    attribute: str
    freed_bytes: float
    use_count: int
    last_used_tick: int
    downgraded: bool = False


def evict_under_pressure(hdfs: "Hdfs", policy: DiskPressurePolicy) -> list[EvictionRecord]:
    """Evict least-recently-used adaptive replicas from every node over its high watermark.

    Pressure is measured against each node's **adaptive footprint** — the on-disk bytes of the
    adaptive replicas ``Dir_rep`` registers on it (:meth:`NameNode.adaptive_bytes_on`).  The
    policy's capacity is thus a per-node budget for opportunistic storage: primary, upload-time
    replicas can never create (nor be consumed by) adaptive-index pressure.

    The invariants the eviction loop maintains (and the lifecycle tests assert):

    - only replicas whose ``Dir_rep`` entry carries ``origin="adaptive"`` are candidates —
      upload-time indexes are never evicted, whatever the pressure;
    - the block's data always survives: an adaptive replica that *displaced* a plain replica
      at commit time is **downgraded** back to a plain, unindexed replica (only the index is
      reclaimed, the replication factor is untouched), and an extra adaptive copy is deleted
      outright only while the block has another alive replica — a block's last alive replica
      is never dropped, whatever the pressure;
    - per reclamation, ``Dir_rep``, ``Dir_block`` and the stored replica change together, so
      no half-removed state can survive, and an eviction tombstone is recorded so the planner
      can explain the resulting fallbacks as "evicted (disk pressure on dnN)";
    - candidates are ordered least-recently-used first (by the namenode's planner-maintained
      index-usage ticks, ties broken by lower use count, then block id for determinism), and
      eviction stops as soon as the node is back under its low watermark.
    """
    records: list[EvictionRecord] = []
    if not policy.enabled:
        return records
    namenode = hdfs.namenode
    # One Dir_rep pass for every node's footprint: this hook runs after every job, so it must
    # cost next to nothing when nothing is under pressure (or nothing is adaptive at all).
    footprints = namenode.adaptive_bytes_by_node()
    for node in hdfs.cluster.alive_nodes:
        used = footprints.get(node.node_id, 0)
        if not policy.under_pressure(used):
            continue
        to_free = policy.bytes_to_free(used)
        datanode = hdfs.datanode(node.node_id)
        candidates = []
        for block_id in datanode.block_ids():
            info = namenode.replica_info(block_id, node.node_id)
            if info is None or not getattr(info, "is_adaptive", False):
                continue
            use_count, last_tick = namenode.index_usage(block_id, node.node_id)
            candidates.append((last_tick, use_count, block_id, info))
        candidates.sort()
        freed = 0.0
        for last_tick, use_count, block_id, info in candidates:
            if freed >= to_free:
                break
            downgrade = getattr(info, "displaced_plain_replica", False)
            if not downgrade:
                other_alive = [
                    datanode_id
                    for datanode_id in namenode.block_datanodes(block_id, alive_only=True)
                    if datanode_id != node.node_id
                ]
                if not other_alive:
                    continue  # never drop the block's last alive replica
            freed_bytes = float(info.size_on_disk_bytes)
            namenode.record_index_eviction(block_id, info.indexed_attribute, node.node_id)
            if downgrade:
                _downgrade_replica(hdfs, node.node_id, block_id, info)
            else:
                namenode.unregister_replica(block_id, node.node_id)
                datanode.delete_replica(block_id)
            freed += freed_bytes
            records.append(
                EvictionRecord(
                    block_id=block_id,
                    datanode_id=node.node_id,
                    attribute=info.indexed_attribute,
                    freed_bytes=freed_bytes,
                    use_count=use_count,
                    last_used_tick=last_tick,
                    downgraded=downgrade,
                )
            )
    return records


def _downgrade_replica(hdfs: "Hdfs", datanode_id: int, block_id: int, info) -> None:
    """Strip the adaptive index off a replica, leaving a plain copy of the block's data.

    The replica's PAX data is kept (it displaced the node's plain replica at commit time, so
    deleting it would shrink the block's replication factor); the clustered index and the
    ``Dir_rep`` index metadata are dropped, and the entry's origin becomes ``"evicted"`` so
    the replica no longer counts against (or can be reclaimed from) the adaptive byte budget.
    """
    from repro.hail.hail_block import HailBlock
    from repro.hail.replica_info import HailBlockReplicaInfo
    from repro.hdfs.block import Replica

    datanode = hdfs.datanode(datanode_id)
    hdfs.namenode.reset_index_usage(block_id, datanode_id)
    payload = datanode.replica(block_id).payload
    plain_block = HailBlock(
        payload.pax,
        None,
        None,
        bad_lines=payload.bad_lines,
        partition_size=payload.partition_size,
        logical_partition_size=payload.logical_partition_size,
    )
    plain_block.pax_layout = payload.pax_layout
    datanode.delete_replica(block_id)
    datanode.store_replica(
        Replica(block_id=block_id, datanode_id=datanode_id, payload=plain_block)
    )
    hdfs.namenode.register_replica_info(
        block_id,
        datanode_id,
        HailBlockReplicaInfo(
            datanode_id=datanode_id,
            sort_attribute=None,
            indexed_attribute=None,
            index_size_bytes=0,
            block_size_bytes=plain_block.size_bytes(),
            num_records=info.num_records,
            pax_layout=info.pax_layout,
            origin="evicted",
        ),
    )


# --------------------------------------------------------------------------- the manager
@dataclass
class LifecycleReport:
    """What the lifecycle manager did after one job."""

    observation: JobObservation
    evicted: list[EvictionRecord] = field(default_factory=list)
    offer_rate: float = 0.0
    budget: Optional[int] = None

    @property
    def num_evicted(self) -> int:
        """Number of adaptive replicas dropped after this job."""
        return len(self.evicted)

    @property
    def freed_bytes(self) -> float:
        """Bytes that left the nodes' *adaptive byte budgets* after this job.

        Note this is budget accounting, not physical disk reclaimed: a downgraded replica's
        full footprint leaves the budget while its plain copy stays on disk (only the index
        bytes are physically freed); deleted extra copies free their full footprint.
        """
        return sum(record.freed_bytes for record in self.evicted)


class AdaptiveLifecycleManager:
    """Per-deployment owner of the eviction policy and the knob tuner.

    ``HailSystem`` creates one manager when the config enables eviction and/or auto-tuning,
    installs it into every job's ``JobConf.properties`` under :data:`LIFECYCLE_PROPERTY`, and
    reads :attr:`offer_rate` / :attr:`budget` back when stamping each job's
    :class:`~repro.engine.adaptive.AdaptiveJobContext`.  The MapReduce runner calls
    :meth:`after_job` once per measured job, after the staged builds were committed — so the
    tuner sees exactly what reached the namenode, and eviction acts on post-commit disk usage.
    """

    #: How many of the most recent per-job :class:`LifecycleReport`\ s to retain for
    #: monitoring (``manager.reports``); older reports are discarded so a long-lived
    #: deployment does not grow without bound.
    MAX_REPORTS = 128

    def __init__(
        self,
        pressure: Optional[DiskPressurePolicy] = None,
        tuner: Optional[AdaptiveTuner] = None,
    ) -> None:
        self.pressure = pressure if pressure is not None else DiskPressurePolicy()
        self.tuner = tuner
        self.reports: list[LifecycleReport] = []

    @classmethod
    def from_config(cls, config) -> Optional["AdaptiveLifecycleManager"]:
        """Build the manager a :class:`~repro.hail.config.HailConfig` asks for (or ``None``).

        Returns ``None`` unless adaptive indexing plus at least one lifecycle feature
        (eviction or auto-tuning) is enabled, so default configurations never pay for — or
        observe — any lifecycle machinery.
        """
        if not config.adaptive_indexing:
            return None
        if not (config.adaptive_eviction or config.adaptive_auto_tune):
            return None
        pressure = DiskPressurePolicy(
            capacity_bytes=config.adaptive_disk_capacity_bytes if config.adaptive_eviction else None,
            high_watermark=config.adaptive_disk_high_watermark,
            low_watermark=config.adaptive_disk_low_watermark,
        )
        tuner = None
        if config.adaptive_auto_tune:
            tuner = AdaptiveTuner(
                offer_rate=config.adaptive_offer_rate,
                budget=config.adaptive_budget_per_job,
                overhead_fraction=config.adaptive_overhead_fraction,
            )
        return cls(pressure=pressure, tuner=tuner)

    # ------------------------------------------------------------------ knob views
    @property
    def offer_rate(self) -> float:
        """The offer rate jobs should run with right now (tuned, or the static config value)."""
        if self.tuner is None:
            raise AttributeError("auto-tuning is off: read the static config knob instead")
        return self.tuner.offer_rate

    @property
    def budget(self) -> Optional[int]:
        """The per-job build budget jobs should run with right now."""
        if self.tuner is None:
            raise AttributeError("auto-tuning is off: read the static config knob instead")
        return self.tuner.budget

    @property
    def auto_tunes(self) -> bool:
        """True when this manager replaces the static offer/budget knobs with the tuner's."""
        return self.tuner is not None

    # ------------------------------------------------------------------ the per-job hook
    def after_job(self, hdfs: "Hdfs", observation: JobObservation) -> LifecycleReport:
        """Run the post-job lifecycle pass: feed the tuner, then relieve disk pressure."""
        if self.tuner is not None:
            self.tuner.observe(observation)
        evicted = evict_under_pressure(hdfs, self.pressure)
        report = LifecycleReport(
            observation=observation,
            evicted=evicted,
            offer_rate=self.tuner.offer_rate if self.tuner is not None else 0.0,
            budget=self.tuner.budget if self.tuner is not None else None,
        )
        self.reports.append(report)
        if len(self.reports) > self.MAX_REPORTS:
            del self.reports[: -self.MAX_REPORTS]
        return report
