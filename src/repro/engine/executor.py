"""The vectorized block executor.

Given a :class:`~repro.engine.access_path.BlockPlan` the executor opens the planned replica,
evaluates the selection predicate *column-at-a-time* over the candidate PAX partitions (instead
of the row-at-a-time post-filter loops the record readers used to carry), reconstructs the
projected attributes only for qualifying positions, and charges the exact same simulated cost
the readers charged before the refactor — the "RecordReader time" of Figures 6(b) and 7(b).

The predicate kernels live in :mod:`repro.engine.kernels` (a dispatch module with a pure-Python
reference backend and an optional numpy fast path); :func:`vectorized_filter` is the executor's
entry point into them and is shared with :meth:`repro.hail.hail_block.HailBlock.filter_rows`,
so the block-level API and the engine cannot drift apart.  With zone maps enabled the executor
additionally prunes candidate partitions against the payload's min-max synopsis and executes
planner-ordered ``ZONE_MAP_SKIP`` blocks — after re-verifying the synopsis against the payload,
failing closed to a full scan on any mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.cluster.costmodel import CostModel
from repro.engine import kernels
from repro.engine.access_path import AccessPath, BlockPlan
from repro.engine.adaptive import PendingIndexBuild
from repro.hdfs.block import Replica, TextBlockPayload
from repro.hdfs.checksum import checksum_file_size
from repro.hdfs.errors import ReplicaNotFoundError
from repro.hdfs.filesystem import Hdfs
from repro.layouts.pax import PaxBlock
from repro.layouts.schema import Schema
from repro.layouts.zonemap import pruned_row_count

if TYPE_CHECKING:  # imported lazily at runtime: repro.hail's __init__ imports us back
    from repro.engine.adaptive import AdaptiveJobContext
    from repro.hail.annotation import HailQuery
    from repro.hail.index import IndexLookup
    from repro.hail.predicate import Comparison, Predicate


# --------------------------------------------------------------------------- predicate kernels
def clause_mask(clause: Comparison, values: Sequence) -> list[bool]:
    """Evaluate one comparison clause over a column slice, column-at-a-time.

    The operator is resolved *once* per column instead of once per value, which is what makes
    the columnar evaluation measurably faster than row-at-a-time dispatch (see
    ``benchmarks/test_engine_filter.py``).  This is the reference mask kernel; the execution
    path itself dispatches through :mod:`repro.engine.kernels`, whose backends collapse the
    mask pipeline into survivor-position refinement (Python) or packed boolean arrays (numpy)
    while preserving exactly these semantics.
    """
    op = clause.op.value
    if op == "=":
        operand = clause.operands[0]
        return [value == operand for value in values]
    if op == "<":
        operand = clause.operands[0]
        return [value < operand for value in values]
    if op == "<=":
        operand = clause.operands[0]
        return [value <= operand for value in values]
    if op == ">":
        operand = clause.operands[0]
        return [value > operand for value in values]
    if op == ">=":
        operand = clause.operands[0]
        return [value >= operand for value in values]
    if op == "between":
        low, high = clause.operands
        return [low <= value <= high for value in values]
    raise ValueError(f"unsupported operator {clause.op!r} in vectorized evaluation")


def vectorized_filter(
    pax: PaxBlock, predicate: Optional[Predicate], schema: Schema, lookup: IndexLookup
) -> list[int]:
    """Row ids inside ``lookup`` that satisfy the (full) predicate, evaluated columnar.

    Equivalent to the classic row-at-a-time loop (``for row: for clause: ...``) but evaluated
    by the active :mod:`repro.engine.kernels` backend: the pure-Python reference backend scans
    each clause's minipage slice once and refines a surviving-position list (tracking the
    surviving-row count as it ANDs, with no per-clause ``any(mask)`` pass), while the optional
    numpy backend runs the same comparisons over packed 64-bit column views.  Clauses keep
    their written order; evaluation stops early when no candidate survives.
    """
    return kernels.filter_range(pax, predicate, schema, lookup.start_row, lookup.end_row)


# --------------------------------------------------------------------------- execution results
@dataclass
class BlockScanResult:
    """Everything a record reader needs after one block was executed."""

    plan: BlockPlan
    schema: Schema
    rows: list[int]
    projected: list[tuple]
    positions: tuple[int, ...]
    bad_lines: list[str]
    seconds: float
    bytes_read: float
    used_index: bool
    #: Adaptive index staged as a by-product of this scan (``None`` for plain scans); the
    #: scheduler commits it after the map phase via ``commit_adaptive_builds``.
    pending_build: Optional[PendingIndexBuild] = None
    #: True when the block was answered via a replica whose index was built *adaptively* —
    #: the lifecycle tuner counts these as uses of past builds.
    used_adaptive_index: bool = False
    #: Measured scan savings of an adaptive-index use: the counterfactual cost of answering
    #: this block with a scan minus the actual index-scan cost (0.0 otherwise).  Feeds the
    #: tuner's benefit ledger (build cost is charged when the index is built; savings accrue
    #: on every later use).
    saved_seconds: float = 0.0
    #: True when the block was answered by a *verified* zone-map skip: the payload's own
    #: synopsis confirmed no row can match, so no data column was read at all.
    zone_map_skipped: bool = False
    #: Data-column bytes zone maps saved this block from reading — the whole candidate column
    #: set for a verified skip, the pruned partitions' share for partition-level pruning.
    zone_map_pruned_bytes: float = 0.0


@dataclass
class TextScanResult:
    """Result of a full text-block scan (stock Hadoop's access path)."""

    plan: BlockPlan
    lines: list[str]
    seconds: float
    bytes_read: float


class VectorizedExecutor:
    """Executes :class:`BlockPlan`\\ s: opens the replica, filters columnar, charges cost."""

    def __init__(
        self, hdfs: Hdfs, cost: CostModel, node_id: int, zone_maps: bool = False
    ) -> None:
        self.hdfs = hdfs
        self.cost = cost
        self.node_id = node_id
        #: When True, candidate windows are pruned against the payload's per-partition zone
        #: map and planner-ordered ZONE_MAP_SKIP plans are executed (after verification).
        self.zone_maps = zone_maps

    # ------------------------------------------------------------------ PAX / HAIL blocks
    def execute(
        self,
        plan: BlockPlan,
        annotation: Optional[HailQuery],
        adaptive: Optional[AdaptiveJobContext] = None,
    ) -> BlockScanResult:
        """Run one planned block: candidate lookup, vectorized filter, projection, cost.

        ``adaptive`` carries the job's adaptive-indexing context: staged replicas honour its
        checksum option, and a cancelled build (stale ``Dir_rep``) refunds its budget slot.
        The *decision* to build was already made by the planner via the plan's access path.
        """
        from repro.hail.hail_block import HailBlock  # local: hail_block imports our kernels
        from repro.hail.index import IndexLookup

        replica = self._open(plan)
        payload = replica.payload
        if not isinstance(payload, HailBlock):
            raise TypeError(
                f"HailRecordReader expects HAIL replicas, found {payload.layout!r}; "
                "was the file uploaded with the HAIL pipeline?"
            )
        schema = payload.schema
        predicate: Optional[Predicate] = None
        projection: Optional[list[str]] = None
        if annotation is not None:
            predicate = annotation.bound_filter(schema)
            projection = annotation.projection_names(schema)

        pruning_allowed = self.zone_maps
        if plan.access_path is AccessPath.ZONE_MAP_SKIP:
            skip = self._execute_zone_map_skip(plan, replica, payload, predicate, projection)
            if skip is not None:
                return skip
            # Verification failed: the Dir_rep synopsis was stale.  Fail closed — run the
            # block as a normal scan with all zone-map pruning disabled, and let _reconcile
            # relabel the access path from the payload ground truth below.
            pruning_allowed = False
            plan.attribute = None
            plan.fallback_reason = "stale zone map synopsis"

        if predicate is not None:
            lookup, used_index = payload.candidate_rows(predicate)
        else:
            # No filter: the whole block qualifies (a plain PAX scan).
            lookup = self._whole_block_lookup(payload)
            used_index = False

        windows = [(lookup.start_row, lookup.end_row)]
        zone_pruned_rows = 0
        zone_pruned_bytes = 0.0
        if pruning_allowed and predicate is not None and payload.num_records:
            zone_map = payload.zone_map
            # Fail-closed staleness guard: a synopsis sized for different data is ignored.
            if zone_map.matches(payload.num_records):
                windows = zone_map.prune_ranges(
                    predicate, schema, lookup.start_row, lookup.end_row
                )
                zone_pruned_rows = pruned_row_count(
                    windows, lookup.start_row, lookup.end_row
                )
                if zone_pruned_rows:
                    columns = payload.columns_to_read(predicate, projection)
                    column_bytes = sum(
                        payload.pax.column_size_bytes(name) for name in columns
                    )
                    zone_pruned_bytes = (
                        zone_pruned_rows / max(1, payload.num_records)
                    ) * column_bytes

        matching_rows = kernels.filter_ranges(payload.pax, predicate, schema, windows)
        projected = payload.project_rows(matching_rows, projection)
        positions = self._projection_positions(schema, projection)

        seconds, read_bytes = self._charge_block(
            replica,
            payload,
            lookup,
            len(matching_rows),
            predicate,
            projection,
            used_index,
            num_candidate_rows=lookup.num_rows - zone_pruned_rows,
        )

        saved_seconds = 0.0
        used_adaptive_index = False
        if used_index and adaptive is not None and adaptive.measure_savings:
            info = self.hdfs.namenode.replica_info(plan.block_id, plan.datanode_id)
            if info is not None and getattr(info, "is_adaptive", False):
                # The block was answered by a previously built adaptive index: measure what a
                # scan of the same replica would have cost (pure cost-model arithmetic over a
                # whole-block lookup) and credit the difference to the tuner's ledger.
                used_adaptive_index = True
                scan_seconds, _ = self._charge_block(
                    replica,
                    payload,
                    self._whole_block_lookup(payload),
                    len(matching_rows),
                    predicate,
                    projection,
                    used_index=False,
                )
                saved_seconds = max(0.0, scan_seconds - seconds)

        pending_build: Optional[PendingIndexBuild] = None
        if plan.build_attribute is not None:
            if self._cancel_build(plan, payload, predicate, used_index):
                # Dir_rep was stale: the opened payload already answers (or carries) the index
                # this build would create, so there is nothing to pay forward; the charged
                # budget slot goes back to the job and _reconcile relabels the plan below.
                if adaptive is not None:
                    adaptive.refund(plan.block_id, plan.build_attribute)
                plan.build_attribute = None
            else:
                pending_build = self._build_adaptive(
                    plan, replica, payload, predicate, projection, adaptive,
                    scanned_bytes=read_bytes,
                )
                seconds += plan.build_seconds
                # The build fetched the columns the scan skipped: account those reads so
                # BYTES_READ stays consistent with the charged I/O time.
                read_bytes += pending_build.bytes_read

        self._reconcile(plan, payload, used_index, projection, lookup, read_bytes)
        return BlockScanResult(
            plan=plan,
            schema=schema,
            rows=matching_rows,
            projected=projected,
            positions=positions,
            bad_lines=list(payload.bad_lines),
            seconds=seconds,
            bytes_read=read_bytes,
            used_index=used_index,
            pending_build=pending_build,
            used_adaptive_index=used_adaptive_index,
            saved_seconds=saved_seconds,
            zone_map_pruned_bytes=zone_pruned_bytes,
        )

    def _execute_zone_map_skip(
        self,
        plan: BlockPlan,
        replica: Replica,
        payload,
        predicate: Optional[Predicate],
        projection: Optional[list[str]],
    ) -> Optional[BlockScanResult]:
        """Execute a planner-ordered skip, or ``None`` when verification fails (fail closed).

        The skip is only honoured when the *payload's own* synopsis — derived from the rows
        actually stored, not from ``Dir_rep`` — confirms both that it covers the current row
        count and that no row can match the predicate.  A confirmed skip reads no data
        columns: only the block metadata and the bad-record section are touched (bad records
        are always surfaced — skipping changes what is read, never what is returned).
        """
        schema = payload.schema
        zone_map = payload.zone_map
        confirmed = (
            predicate is not None
            and zone_map.matches(payload.num_records)
            and not zone_map.may_match(predicate, schema)
        )
        if not confirmed:
            return None
        bad_bytes = payload.bad_records_size_bytes()
        seconds = self.cost.reader_setup() + self._charge_transfer(replica, bad_bytes)
        columns = payload.columns_to_read(predicate, projection)
        pruned_bytes = float(
            sum(payload.pax.column_size_bytes(name) for name in columns)
        )
        plan.estimated_rows = 0
        plan.estimated_bytes = bad_bytes
        return BlockScanResult(
            plan=plan,
            schema=schema,
            rows=[],
            projected=[],
            positions=self._projection_positions(schema, projection),
            bad_lines=list(payload.bad_lines),
            seconds=seconds,
            bytes_read=float(bad_bytes),
            used_index=False,
            zone_map_skipped=True,
            zone_map_pruned_bytes=pruned_bytes,
        )

    @staticmethod
    def _whole_block_lookup(payload) -> "IndexLookup":
        """An :class:`IndexLookup` spanning the entire block (every partition, every row)."""
        from repro.hail.index import IndexLookup

        return IndexLookup(
            first_partition=0,
            last_partition=max(0, -(-payload.num_records // payload.partition_size) - 1),
            start_row=0,
            end_row=payload.num_records,
        )

    @staticmethod
    def _cancel_build(plan: BlockPlan, payload, predicate, used_index: bool) -> bool:
        """Should the staged build be cancelled because ``Dir_rep`` was stale?

        A pay-forward scan (:attr:`AccessPath.ADAPTIVE_INDEX_BUILD`) is pointless as soon as
        the opened payload answered via *any* index; a piggyback build on an index scan
        (multi-attribute convergence) is only pointless when the opened replica turns out to
        be sorted on the build attribute itself — being answered via an index on a different
        attribute is exactly the situation the piggyback exists for.
        """
        if predicate is None:
            return True
        if plan.access_path is AccessPath.ADAPTIVE_INDEX_BUILD:
            return used_index
        return payload.sort_attribute == plan.build_attribute

    # ------------------------------------------------------------------ text blocks
    def execute_text(self, plan: BlockPlan) -> TextScanResult:
        """Run one planned text block: full sequential scan, one record per line."""
        replica = self._open(plan)
        payload = replica.payload
        if not isinstance(payload, TextBlockPayload):
            raise TypeError(
                f"TextRecordReader expects text replicas, found {payload.layout!r}"
            )
        node = self.hdfs.cluster.node(self.node_id)
        cpu = self.cost.cpu(node)
        block_bytes = payload.size_bytes()
        seconds = self.cost.reader_setup()
        seconds += self._charge_transfer(replica, block_bytes)
        # Finding line boundaries, splitting attributes and building per-row objects is the
        # CPU side of the full scan.
        seconds += cpu.scan_text(
            self.cost.scale_bytes(block_bytes), self.cost.scale_count(len(payload.lines))
        )
        plan.estimated_rows = len(payload.lines)
        plan.estimated_bytes = block_bytes
        return TextScanResult(
            plan=plan, lines=list(payload.lines), seconds=seconds, bytes_read=block_bytes
        )

    # ------------------------------------------------------------------ adaptive index builds
    def _build_adaptive(
        self,
        plan: BlockPlan,
        replica: Replica,
        payload,
        predicate: Predicate,
        projection: Optional[list[str]],
        adaptive: Optional[AdaptiveJobContext],
        scanned_bytes: float = 0.0,
    ) -> PendingIndexBuild:
        """Stage an indexed replica of the just-scanned block (LIAH's piggybacked build).

        The task already holds the block's candidate columns in memory; building the index
        means fetching the columns the scan skipped, sorting everything by the filter
        attribute, writing the clustered index and flushing the new replica to the executing
        node's local disk.  The payload is already columnar, so the build works directly on
        the PAX minipages (sort-permute + reorder) instead of round-tripping through row
        tuples.  Nothing touches HDFS metadata here — the staged build is only committed (by
        ``commit_adaptive_builds``) if this task attempt survives the job.

        ``scanned_bytes`` is what the scan already read; for a piggyback build riding on an
        *index scan* (multi-attribute convergence) it determines how much of the block still
        has to be fetched — an index scan touched only the qualifying partitions, unlike the
        full/projection scans of the classic pay-forward path.
        """
        from repro.hail.hail_block import HailBlock
        from repro.hail.index import HailIndex
        from repro.hail.replica_info import HailBlockReplicaInfo

        attribute = plan.build_attribute
        index, permutation = HailIndex.from_unsorted(
            attribute, payload.pax.column(attribute), partition_size=payload.partition_size
        )
        block = HailBlock(
            payload.pax.reorder(permutation),
            attribute,
            index,
            bad_lines=payload.bad_lines,
            partition_size=payload.partition_size,
            logical_partition_size=payload.logical_partition_size,
        )
        # The staged replica keeps the source replica's physical layout: under the "no PAX
        # conversion" ablation an adaptive rebuild stays row-wise, so the ablation's cost
        # shape is preserved instead of silently converging to PAX behaviour.
        block.pax_layout = payload.pax_layout
        if plan.access_path is AccessPath.ADAPTIVE_INDEX_BUILD:
            remaining_bytes = self._build_read_bytes(payload, predicate, projection)
        else:
            # Piggyback on an index scan: the scan read only the qualifying partitions of the
            # needed columns, so the build fetches the rest of the block's data.
            data_read = max(0.0, scanned_bytes - payload.bad_records_size_bytes())
            remaining_bytes = max(0.0, float(payload.data_size_bytes()) - data_read)
        seconds, write_bytes = self._charge_adaptive_build(
            replica, payload, block, remaining_bytes
        )
        plan.build_seconds = seconds
        checksums: tuple[int, ...] = ()
        if adaptive is not None and adaptive.verify_checksums:
            from repro.hdfs.checksum import chunk_checksums

            checksums = tuple(chunk_checksums(block.pax.to_bytes()))
        replica = Replica(
            block_id=plan.block_id,
            datanode_id=self.node_id,
            payload=block,
            checksums=checksums,
            sort_attribute=attribute,
            indexed_attribute=attribute,
        )
        info = HailBlockReplicaInfo(
            datanode_id=self.node_id,
            sort_attribute=attribute,
            indexed_attribute=attribute,
            index_size_bytes=block.index_size_bytes(),
            block_size_bytes=block.size_bytes(),
            num_records=block.num_records,
            pax_layout=payload.pax_layout,
            origin="adaptive",
            zone_ranges=block.zone_ranges(),
        )
        return PendingIndexBuild(
            block_id=plan.block_id,
            datanode_id=self.node_id,
            attribute=attribute,
            replica=replica,
            info=info,
            build_seconds=seconds,
            bytes_written=float(write_bytes),
            bytes_read=remaining_bytes,
        )

    def _charge_adaptive_build(
        self, replica: Replica, payload, new_block, remaining_bytes: float
    ) -> tuple[float, float]:
        """Incremental cost of the piggybacked build, through the same per-node cost models.

        The scan already read the predicate/projection columns, so only ``remaining_bytes`` of
        skipped columns are fetched (over the network when the scanned replica is remote, the
        same way the scan's own reads are charged); then the block is sorted in memory, the
        sparse index directory is written, checksums are recomputed (the new replica has
        different bytes) and the replica is flushed sequentially.  All terms are per-core — a
        map task is single-threaded, unlike the upload pipeline which spreads this work over
        all cores of a datanode.
        """
        node = self.hdfs.cluster.node(self.node_id)
        disk = self.cost.disk(node)
        cpu = self.cost.cpu(node)

        seconds = 0.0
        if remaining_bytes:
            seconds += self._charge_transfer(replica, remaining_bytes)

        logical_values = int(self.cost.scale_count(payload.num_records))
        pax_bytes = payload.data_size_bytes()
        seconds += cpu.sort_block(logical_values, self.cost.scale_bytes(pax_bytes))
        seconds += cpu.build_index(logical_values)
        seconds += cpu.checksum(self.cost.scale_bytes(pax_bytes))

        replica_bytes = new_block.size_bytes()
        write_bytes = replica_bytes + checksum_file_size(replica_bytes)
        seconds += disk.sequential_write(self.cost.scale_bytes(write_bytes))
        return seconds, float(write_bytes)

    @staticmethod
    def _build_read_bytes(
        payload, predicate: Optional[Predicate], projection: Optional[list[str]]
    ) -> float:
        """Bytes of the columns an adaptive build must fetch beyond what the scan read."""
        already_read = set(payload.columns_to_read(predicate, projection))
        return float(
            sum(
                payload.pax.column_size_bytes(name)
                for name in payload.schema.field_names
                if name not in already_read
            )
        )

    # ------------------------------------------------------------------ cost accounting
    def _charge_block(
        self,
        replica: Replica,
        payload,
        lookup: IndexLookup,
        num_matching: int,
        predicate: Optional[Predicate],
        projection: Optional[list[str]],
        used_index: bool,
        num_candidate_rows: Optional[int] = None,
    ) -> tuple[float, float]:
        from repro.hail.index import logical_index_size_bytes

        node = self.hdfs.cluster.node(self.node_id)
        disk = self.cost.disk(node)
        cpu = self.cost.cpu(node)
        num_records = max(1, payload.num_records)
        # Zone-map partition pruning shrinks the candidate set below the lookup's row range;
        # callers pass the post-pruning count so the charged I/O matches what was read.
        effective_rows = lookup.num_rows if num_candidate_rows is None else num_candidate_rows
        candidate_fraction = min(1.0, max(0, effective_rows) / num_records)
        qualifying_fraction = min(1.0, num_matching / num_records)
        logical_rows = self.cost.scale_count(payload.num_records)
        candidate_rows = candidate_fraction * logical_rows
        qualifying_rows = qualifying_fraction * logical_rows

        columns = payload.columns_to_read(predicate, projection)
        column_bytes = sum(payload.pax.column_size_bytes(name) for name in columns)
        candidate_bytes = candidate_fraction * column_bytes
        bad_bytes = payload.bad_records_size_bytes()
        read_bytes = candidate_bytes + bad_bytes

        seconds = self.cost.reader_setup()
        if used_index:
            # Read the index directory entirely into main memory (one seek + a few KB).
            logical_index_bytes = logical_index_size_bytes(
                logical_rows, payload.logical_partition_size
            )
            seconds += disk.random_read(logical_index_bytes, num_seeks=1)
            # Read only the qualifying partitions: one seek per column minipage in PAX layout,
            # a single contiguous range in row layout (the Hadoop++ trojan blocks).
            data_seeks = len(columns) if payload.pax_layout else 1
            seconds += disk.random_read(self.cost.scale_bytes(read_bytes), num_seeks=data_seeks)
            # Post-filter only the candidate partitions.
            if predicate is not None:
                filter_columns = predicate.attributes(payload.schema)
                filter_bytes = candidate_fraction * sum(
                    payload.pax.column_size_bytes(name) for name in filter_columns
                )
                seconds += cpu.post_filter(self.cost.scale_bytes(filter_bytes), candidate_rows)
        else:
            # Scan fallback: the needed columns (or whole rows) are read sequentially in full
            # and every record is examined.
            seconds += disk.sequential_read(self.cost.scale_bytes(read_bytes))
            if payload.pax_layout:
                filter_bytes = candidate_bytes if predicate is None else candidate_fraction * sum(
                    payload.pax.column_size_bytes(name)
                    for name in predicate.attributes(payload.schema)
                )
                seconds += cpu.post_filter(self.cost.scale_bytes(filter_bytes), candidate_rows)
            else:
                seconds += cpu.scan_binary_rows(self.cost.scale_bytes(read_bytes), candidate_rows)

        if replica.datanode_id != self.node_id:
            source = self.hdfs.cluster.node(replica.datanode_id)
            locality = self.hdfs.cluster.locality(replica.datanode_id, self.node_id)
            seconds += self.cost.network.transfer(
                self.cost.scale_bytes(read_bytes), source.hardware, node.hardware, locality
            )

        # Reconstruct the projected attributes of the qualifying tuples (PAX to row layout).
        projection_names = projection if projection is not None else payload.schema.field_names
        projected_bytes = qualifying_fraction * sum(
            payload.pax.column_size_bytes(name) for name in projection_names
        )
        if payload.pax_layout:
            seconds += cpu.reconstruct_tuples(self.cost.scale_bytes(projected_bytes), qualifying_rows)
        else:
            # Row layout: qualifying tuples are already contiguous rows; only the per-record
            # object creation cost remains.
            seconds += cpu.reconstruct_tuples(0.0, qualifying_rows)

        return seconds, read_bytes

    def _charge_transfer(self, replica: Replica, num_bytes: float) -> float:
        """Charge a sequential read of ``num_bytes`` from ``replica`` (remote adds network)."""
        node = self.hdfs.cluster.node(self.node_id)
        scaled = self.cost.scale_bytes(num_bytes)
        seconds = self.cost.disk(node).sequential_read(scaled)
        if replica.datanode_id != self.node_id:
            source = self.hdfs.cluster.node(replica.datanode_id)
            locality = self.hdfs.cluster.locality(replica.datanode_id, self.node_id)
            seconds += self.cost.network.transfer(scaled, source.hardware, node.hardware, locality)
        return seconds

    # ------------------------------------------------------------------ helpers
    def _open(self, plan: BlockPlan) -> Replica:
        if plan.datanode_id < 0:
            raise ReplicaNotFoundError(f"no alive replica of block {plan.block_id}")
        return self.hdfs.read_replica(plan.block_id, plan.datanode_id)

    @staticmethod
    def _reconcile(
        plan: BlockPlan,
        payload,
        used_index: bool,
        projection: Optional[list[str]],
        lookup: IndexLookup,
        read_bytes: float,
    ) -> None:
        """Refine the plan with what actually happened (ground truth is the opened payload)."""
        if used_index:
            if plan.uses_index:
                # The planner already told index scans from trojan scans via Dir_rep's
                # index_type; the payload cannot distinguish them (the "no PAX conversion"
                # ablation is row-layout too), so keep the planner's classification.
                actual = plan.access_path
            else:
                actual = (
                    AccessPath.INDEX_SCAN if payload.pax_layout else AccessPath.TROJAN_INDEX_SCAN
                )
            plan.attribute = payload.sort_attribute
        elif plan.access_path is AccessPath.ADAPTIVE_INDEX_BUILD and plan.build_attribute is not None:
            # The scan happened exactly as a full/projection scan would, plus the staged build;
            # keep the ADAPTIVE_INDEX_BUILD label (it is what this attempt actually did).
            actual = plan.access_path
        elif payload.pax_layout and projection is not None:
            actual = AccessPath.PAX_PROJECTION_SCAN
        else:
            actual = AccessPath.FULL_SCAN
        if actual is not plan.access_path:
            plan.access_path = actual
            plan.fallback_reason = plan.fallback_reason or "replica payload disagreed with Dir_rep"
        plan.estimated_rows = lookup.num_rows
        plan.estimated_bytes = read_bytes

    @staticmethod
    def _projection_positions(schema: Schema, projection: Optional[list[str]]) -> tuple[int, ...]:
        if projection is None:
            return tuple(range(1, len(schema) + 1))
        return tuple(schema.position_of(name) for name in projection)
