"""Grouped aggregation pushed into map/reduce with map-side combiners.

The operator compiles a :class:`GroupByQuery` onto the owning system's *existing* scan
machinery: the system builds its normal selection/projection job (index-aware splits, PAX
projection, zone maps — whatever the deployment configures), and this module wraps the map
function to emit ``(group key, partial aggregate)`` pairs, installs a merging combiner and a
finalizing reducer, and routes the job through the shared MapReduce runner.  The map-side
combiner (``mapreduce.shuffle.combine_map_output``) is what makes aggregation cheap on the
substrate: one partial pair per (map task, group) crosses the shuffle instead of one pair per
input record, observable via the ``COMBINE_*``/``SHUFFLE_BYTES_SAVED`` counters.

All partials are exact for integer data (``avg`` carries ``(sum, count)``), so a combined and
an uncombined run produce bit-identical results — the associativity property the hypothesis
suite pins.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # only for annotations: systems and workloads import the engine back
    from repro.systems.base import BaseSystem, QueryResult
    from repro.workloads.query import Query

#: Aggregate functions the operator supports (the classic SQL five).
SUPPORTED_FUNCTIONS = ("count", "sum", "min", "max", "avg")

_SPEC_RE = re.compile(r"^\s*(?P<func>[a-zA-Z]+)\s*\(\s*(?P<attr>\*|[A-Za-z_]\w*)\s*\)\s*$")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate column: ``func`` over ``attribute`` (``None`` only for ``count(*)``)."""

    func: str
    attribute: Optional[str] = None

    def __post_init__(self) -> None:
        if self.func not in SUPPORTED_FUNCTIONS:
            raise ValueError(
                f"unsupported aggregate {self.func!r}; supported: {', '.join(SUPPORTED_FUNCTIONS)}"
            )
        if self.attribute is None and self.func != "count":
            raise ValueError(f"{self.func}() needs an attribute; only count(*) may omit it")

    @classmethod
    def parse(cls, text: str) -> "AggregateSpec":
        """Parse the SQL spelling: ``"count(*)"``, ``"sum(f2)"``, ``"avg(adRevenue)"``."""
        match = _SPEC_RE.match(text)
        if match is None:
            raise ValueError(f"cannot parse aggregate {text!r}; expected e.g. 'sum(f2)'")
        attribute: Optional[str] = match.group("attr")
        if attribute == "*":
            attribute = None
        return cls(func=match.group("func").lower(), attribute=attribute)

    def sql(self) -> str:
        """The SQL rendering used in descriptions and ``explain()`` output."""
        return f"{self.func}({self.attribute if self.attribute is not None else '*'})"


@dataclass(frozen=True)
class GroupByQuery:
    """A compiled grouped-aggregation query (``GROUP BY`` + aggregate columns).

    Output rows are ``(*group key values, *aggregate values)`` in declaration order, sorted
    canonically (by ``repr``) so results are deterministic across systems and shuffle
    partitionings.  ``combiner`` switches the map-side combine off for A/B comparison — the
    results are bit-identical either way; only the shuffled pair count (and hence the
    simulated reduce cost) changes.

    Attributes
    ----------
    name:
        Short identifier used in reports.
    keys:
        Grouping attribute names, in output order.
    aggregates:
        Aggregate columns, in output order.
    predicate:
        Optional pre-aggregation selection (pushed into the scan like any query predicate).
    combiner:
        Install the map-side combiner (default on).
    description:
        SQL label; rendered from the compiled form when omitted.
    """

    name: str
    keys: tuple[str, ...]
    aggregates: tuple["AggregateSpec", ...]
    predicate: Optional[Any] = None
    combiner: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        from repro.workloads.query import render_sql  # lazy: workloads imports us back

        if not self.keys:
            raise ValueError("group_by needs at least one key attribute")
        if not self.aggregates:
            raise ValueError("group_by needs at least one aggregate (agg(...))")
        if not self.description:
            columns = list(self.keys) + [spec.sql() for spec in self.aggregates]
            base = render_sql(self.predicate, columns)
            object.__setattr__(
                self, "description", f"{base} GROUP BY {', '.join(self.keys)}"
            )

    def base_query(self) -> "Query":
        """The selection/projection scan feeding the aggregation (keys + aggregated columns)."""
        from repro.workloads.query import Query  # lazy: workloads imports us back

        needed = list(self.keys)
        for spec in self.aggregates:
            if spec.attribute is not None and spec.attribute not in needed:
                needed.append(spec.attribute)
        return Query(
            name=f"{self.name}-scan", predicate=self.predicate, projection=tuple(needed)
        )


# --------------------------------------------------------------------------- partials
def _initial_partial(spec: AggregateSpec, value: Any) -> Any:
    """The partial aggregate of a single input value."""
    if spec.func == "count":
        return 1
    if spec.func == "avg":
        return (value, 1)
    return value


def _merge_partials(spec: AggregateSpec, partials: list) -> Any:
    """Merge partial aggregates (associative and commutative — the combiner contract)."""
    if spec.func == "count":
        return sum(partials)
    if spec.func == "sum":
        return sum(partials)
    if spec.func == "min":
        return min(partials)
    if spec.func == "max":
        return max(partials)
    total = sum(part[0] for part in partials)
    count = sum(part[1] for part in partials)
    return (total, count)


def _finalize(spec: AggregateSpec, partial: Any) -> Any:
    """Turn a merged partial into the aggregate's output value (``avg`` divides here)."""
    if spec.func == "avg":
        total, count = partial
        return total / count
    return partial


def make_combiner(aggregates: tuple[AggregateSpec, ...]):
    """The map-side combiner: merge partials per group, never finalize."""

    def combiner(key, values):
        merged = tuple(
            _merge_partials(spec, [value[i] for value in values])
            for i, spec in enumerate(aggregates)
        )
        return [(key, merged)]

    return combiner


def make_reducer(aggregates: tuple[AggregateSpec, ...]):
    """The final reducer: merge partials per group, then finalize into the output row."""

    def reducer(key, values):
        merged = [
            _merge_partials(spec, [value[i] for value in values])
            for i, spec in enumerate(aggregates)
        ]
        finalized = tuple(_finalize(spec, part) for spec, part in zip(aggregates, merged))
        return [(key, tuple(key) + finalized)]

    return reducer


# --------------------------------------------------------------------------- execution
def execute_group_by(system: "BaseSystem", query: GroupByQuery, path: str) -> "QueryResult":
    """Run a grouped aggregation on ``system``: scan → map-side combine → shuffle → reduce.

    The scan half reuses the system's own jobconf (mapper, input format, annotations), so an
    indexed HAIL deployment aggregates over index-narrowed candidate rows exactly like a
    plain query would; only the emitted pairs change shape.
    """
    from repro.systems.base import QueryResult

    schema = system.schema_of(path)
    base = query.base_query()
    jobconf = system._make_jobconf(base, path, schema)

    projection = base.projection or tuple(schema.field_names)
    key_positions = [projection.index(key) for key in query.keys]
    value_positions = [
        projection.index(spec.attribute) if spec.attribute is not None else None
        for spec in query.aggregates
    ]
    scan_mapper = jobconf.mapper

    def mapper(key, record):
        pairs = scan_mapper(key, record)
        if not pairs:
            return None
        out = []
        for _, row in pairs:
            group_key = tuple(row[position] for position in key_positions)
            partial = tuple(
                _initial_partial(spec, row[position] if position is not None else None)
                for spec, position in zip(query.aggregates, value_positions)
            )
            out.append((group_key, partial))
        return out

    jobconf.mapper = mapper
    jobconf.reducer = make_reducer(query.aggregates)
    if query.combiner:
        jobconf.combiner = make_combiner(query.aggregates)
    jobconf.num_reduce_tasks = max(1, len(system.cluster.alive_nodes))
    job = system.run_job(jobconf)
    # Canonical output order: group keys sorted by repr, independent of the shuffle's hash
    # partitioning, so combined/uncombined and cross-system runs compare bit-identically.
    records = sorted(job.records, key=repr)
    return QueryResult(
        system=system.name, query_name=query.name, records=records, job=job, plan=None
    )


def explain_group_by(system: "BaseSystem", query: GroupByQuery, path: str) -> str:
    """``EXPLAIN`` rendering: the aggregation operator on top of the scan's physical plan."""
    base = query.base_query()
    header = [
        f"GroupByAggregate {query.name!r}: {query.description}",
        f"  keys: {', '.join(query.keys)}",
        f"  aggregates: {', '.join(spec.sql() for spec in query.aggregates)}",
        f"  map-side combiner: {'on' if query.combiner else 'off'}",
        f"  reduce tasks: {max(1, len(system.cluster.alive_nodes))}",
    ]
    plan = system.plan_query(base, path).explain()
    return "\n".join(header) + "\n" + _indent(plan)


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())
