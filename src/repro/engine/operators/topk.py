"""Ranked top-k (``ORDER BY ... LIMIT k``) with early termination over sorted replicas.

The operator exploits the two synopses HAIL maintains per block replica in ``Dir_rep``: the
clustered-index sort order (which makes per-block extrema meaningful) and the block-level
zone ranges (``(attribute, min, max)`` triples registered at upload/build time).  Blocks are
visited best-first — the block whose zone range can contain the most extreme order values
first — and once ``k`` rows are held, any block whose entire zone range falls strictly on the
wrong side of the current ``k``-th value is skipped without opening its payload
(``TOPK_BLOCKS_SKIPPED``).  Additionally the current threshold is pushed into each block scan
as an extra comparison clause, so sorted replicas index-narrow and per-partition zone maps
prune *within* the blocks that are read.

Correctness is fail-closed: blocks without a usable bound are always read, ties with the
``k``-th value are always read, and uncomparable bound types disable skipping for that block.
Systems whose payloads are plain text (stock Hadoop) fall back to a full scan-and-sort; the
result is bit-identical, only the blocks-read fraction differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.hail.annotation import HailQuery
from repro.hail.predicate import Comparison, Operator, Predicate
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import JobResult

if TYPE_CHECKING:  # only for annotations: systems and workloads import the engine back
    from repro.systems.base import BaseSystem, QueryResult
    from repro.workloads.query import Query


@dataclass(frozen=True)
class TopKQuery:
    """A compiled ranked top-k query: ``ORDER BY order_by [DESC] LIMIT k``.

    Output rows are the ``k`` most extreme rows by ``order_by`` (after ``predicate``), in
    rank order, projected to ``projection``.  Ties at the boundary are broken
    deterministically by the full row's ``repr`` (ascending), so every system and every
    block-visit order returns the same ``k`` rows.

    Attributes
    ----------
    name:
        Short identifier used in reports.
    order_by:
        The ranking attribute.
    k:
        Number of rows to return (``LIMIT``); must be >= 1.
    descending:
        Rank by largest-first when True (``ORDER BY ... DESC``).
    predicate:
        Optional selection applied before ranking.
    projection:
        Output columns (``None`` keeps full rows).
    description:
        SQL label; rendered from the compiled form when omitted.
    """

    name: str
    order_by: str
    k: int
    descending: bool = False
    predicate: Optional[Any] = None
    projection: Optional[tuple[str, ...]] = None
    description: str = ""

    def __post_init__(self) -> None:
        from repro.workloads.query import render_sql  # lazy: workloads imports us back

        if self.k < 1:
            raise ValueError(f"top-k needs k >= 1, got {self.k}")
        if not self.description:
            base = render_sql(self.predicate, self.projection)
            direction = " DESC" if self.descending else ""
            object.__setattr__(
                self,
                "description",
                f"{base} ORDER BY {self.order_by}{direction} LIMIT {self.k}",
            )

    def scan_query(self) -> "Query":
        """The unranked full scan used by the text fallback (full rows; ranked client-side)."""
        from repro.workloads.query import Query  # lazy: workloads imports us back

        return Query(name=f"{self.name}-scan", predicate=self.predicate, projection=None)


# --------------------------------------------------------------------------- ranking helpers
def _trim_top(top: list[tuple], order_index: int, k: int, descending: bool) -> None:
    """Keep the best ``k`` rows in rank order, ties broken by ``repr`` ascending.

    Two stable sorts: ``repr`` first (the secondary key), then the order value — so rows with
    equal order values appear in ``repr`` order regardless of block-visit order.
    """
    top.sort(key=repr)
    top.sort(key=lambda row: row[order_index], reverse=descending)
    del top[k:]


def _block_bound(system: "BaseSystem", block_id: int, attribute: str):
    """The ``(low, high)`` zone range of ``attribute`` from any alive replica's ``Dir_rep``
    entry, or ``None`` when no replica carries a synopsis for it (the block is unskippable)."""
    namenode = system.hdfs.namenode
    for info in namenode.replica_infos(block_id, alive_only=True).values():
        for name, low, high in getattr(info, "zone_ranges", None) or ():
            if name == attribute:
                return (low, high)
    return None


def _visit_order(
    bounds: dict[int, Optional[tuple]], descending: bool
) -> list[int]:
    """Best-first block order: most promising zone range first, unbounded blocks last.

    Visiting the block that can contain the most extreme order values first makes the running
    ``k``-th threshold tight as early as possible, which maximises how many later blocks the
    skip rule and the pushed-down threshold clause can prune.
    """
    bounded = [bid for bid, bound in bounds.items() if bound is not None]
    unbounded = [bid for bid, bound in bounds.items() if bound is None]
    try:
        if descending:
            bounded.sort(key=lambda bid: bounds[bid][1], reverse=True)
        else:
            bounded.sort(key=lambda bid: bounds[bid][0])
    except TypeError:  # uncomparable bound types: keep file order, never mis-skip
        bounded = sorted(bounded)
    return bounded + sorted(unbounded)


def _can_skip(
    bound: Optional[tuple], kth_value: Any, descending: bool
) -> bool:
    """True when the block's entire zone range is strictly worse than the ``k``-th value.

    Ties are never skipped (a tied row may displace a held row under the ``repr``
    tie-break), and uncomparable types fail closed to "read the block".
    """
    if bound is None:
        return False
    low, high = bound
    try:
        if descending:
            return high < kth_value
        return low > kth_value
    except TypeError:
        return False


def _threshold_annotation(query: TopKQuery, kth_value: Any) -> HailQuery:
    """The per-block scan annotation once ``k`` rows are held: base predicate plus a
    ``order_by >= kth`` (descending) / ``<= kth`` (ascending) clause.

    The extra clause lets a replica sorted on ``order_by`` index-narrow the candidate window
    and lets per-partition zone maps prune inside the block; it is inclusive, so boundary
    ties still surface and the ``repr`` tie-break stays correct.
    """
    operator = Operator.GE if query.descending else Operator.LE
    clauses = tuple(query.predicate.clauses) if query.predicate is not None else ()
    clauses = clauses + (Comparison(query.order_by, operator, (kth_value,)),)
    return HailQuery(filter=Predicate(clauses), projection=None)


# --------------------------------------------------------------------------- execution
def execute_top_k(system: "BaseSystem", query: TopKQuery, path: str) -> "QueryResult":
    """Run the top-k: best-first block visits with zone-range early termination.

    Block payloads are executed through the system's own planner/executor pair, so sorted
    replicas, PAX projection and zone maps all apply per block; text payloads (stock Hadoop)
    raise inside the executor and divert to :func:`_execute_top_k_fullscan`.
    """
    from repro.engine.executor import VectorizedExecutor
    from repro.systems.base import QueryResult

    schema = system.schema_of(path)
    order_index = schema.index_of(query.order_by)
    block_ids = system.hdfs.namenode.file_blocks(path)
    bounds = {bid: _block_bound(system, bid, query.order_by) for bid in block_ids}

    planner = system._planner()
    base_annotation = HailQuery(filter=query.predicate, projection=None)
    counters = Counters()
    top: list[tuple] = []
    seconds = 0.0
    blocks_read = 0
    blocks_skipped = 0

    for block_id in _visit_order(bounds, query.descending):
        threshold = top[query.k - 1][order_index] if len(top) >= query.k else None
        if threshold is not None and _can_skip(bounds[block_id], threshold, query.descending):
            blocks_skipped += 1
            continue
        annotation = (
            _threshold_annotation(query, threshold)
            if threshold is not None
            else base_annotation
        )
        # adaptive=None: top-k probes must not stage index builds as a side effect.
        plan = planner.plan_block(block_id, annotation=annotation)
        executor = VectorizedExecutor(
            system.hdfs, system.cost, node_id=plan.datanode_id, zone_maps=planner.zone_maps
        )
        try:
            result = executor.execute(plan, annotation)
        except TypeError:
            # Text payload (stock Hadoop): no block-wise path; rank over a full scan.
            return _execute_top_k_fullscan(system, query, path)
        seconds += result.seconds
        counters.increment(Counters.BYTES_READ, result.bytes_read)
        if result.zone_map_skipped:
            blocks_skipped += 1
            continue
        blocks_read += 1
        top.extend(result.projected)
        _trim_top(top, order_index, query.k, query.descending)

    counters.increment(Counters.TOPK_BLOCKS_READ, blocks_read)
    counters.increment(Counters.TOPK_BLOCKS_SKIPPED, blocks_skipped)
    records = _project(top, schema, query.projection)
    job = _synthesize_job(system, query, records, seconds, blocks_read, counters)
    return QueryResult(
        system=system.name, query_name=query.name, records=records, job=job, plan=None
    )


def _execute_top_k_fullscan(
    system: "BaseSystem", query: TopKQuery, path: str
) -> "QueryResult":
    """Fallback for systems without block-wise columnar payloads: scan all, rank client-side.

    Bit-identical result; every block is read (``TOPK_BLOCKS_READ`` counts them all), which
    is exactly the baseline the benchmark compares HAIL's early termination against.
    """
    from repro.systems.base import QueryResult

    schema = system.schema_of(path)
    order_index = schema.index_of(query.order_by)
    scan = system.run_query(query.scan_query(), path)
    top = list(scan.records)
    _trim_top(top, order_index, query.k, query.descending)
    records = _project(top, schema, query.projection)

    counters = scan.job.counters
    counters.increment(
        Counters.TOPK_BLOCKS_READ, len(system.hdfs.namenode.file_blocks(path))
    )
    job = scan.job
    job.output = [(None, row) for row in records]
    return QueryResult(
        system=system.name, query_name=query.name, records=records, job=job, plan=None
    )


def _project(
    rows: list[tuple], schema, projection: Optional[tuple[str, ...]]
) -> list[tuple]:
    """Apply the output projection to full ranked rows (post-ranking, order preserved)."""
    if projection is None:
        return list(rows)
    positions = [schema.index_of(name) for name in projection]
    return [tuple(row[position] for position in positions) for row in rows]


def _synthesize_job(
    system: "BaseSystem",
    query: TopKQuery,
    records: list[tuple],
    scan_seconds: float,
    blocks_read: int,
    counters: Counters,
) -> JobResult:
    """Assemble the :class:`JobResult` of a block-wise top-k run.

    The driver visits blocks sequentially (each probe's result decides whether the next block
    is skippable), so the runtime is the job startup plus the sum of per-block scan seconds —
    one wave, no reduce phase.
    """
    runtime = system.cost.job_startup() + scan_seconds
    return JobResult(
        job_name=f"{system.name.lower()}-{query.name}[topk]",
        output=[(None, row) for row in records],
        runtime_s=runtime,
        ideal_time_s=scan_seconds,
        num_map_tasks=blocks_read,
        num_waves=1,
        avg_record_reader_s=scan_seconds / blocks_read if blocks_read else 0.0,
        max_record_reader_s=0.0,
        total_record_reader_s=scan_seconds,
        map_phase_s=scan_seconds,
        reduce_phase_s=0.0,
        split_phase_s=0.0,
        counters=counters,
    )


def explain_top_k(system: "BaseSystem", query: TopKQuery, path: str) -> str:
    """``EXPLAIN`` rendering: ranking spec, per-block bound coverage, and the scan plan."""
    block_ids = system.hdfs.namenode.file_blocks(path)
    bounded = sum(
        1 for bid in block_ids if _block_bound(system, bid, query.order_by) is not None
    )
    header = [
        f"TopK {query.name!r}: {query.description}",
        f"  order by: {query.order_by} {'DESC' if query.descending else 'ASC'}, k={query.k}",
        f"  zone-range bounds: {bounded}/{len(block_ids)} blocks "
        f"({'early termination possible' if bounded else 'full scan-and-sort'})",
        f"  threshold pushdown: {query.order_by} "
        f"{'>=' if query.descending else '<='} <running k-th value>",
    ]
    plan = system.plan_query(query.scan_query(), path).explain()
    return "\n".join(header) + "\n" + "\n".join(
        "  " + line for line in plan.splitlines()
    )
