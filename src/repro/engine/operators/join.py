"""Equi-joins over two uploaded datasets: co-partitioned merge join or shuffle hash join.

HAIL's per-replica clustered indexes give the planner a free co-partitioning signal: when
*every* block of *both* sides has an alive replica indexed (and therefore sorted) on the join
key, the two scans' outputs can be merged map-side without a shuffle — the paper's layout
makes the classic sort-merge join's expensive phase a property of the storage.  When the
signal is absent (stock Hadoop, a missing index, a dead replica), the operator falls back to
the textbook shuffle hash join, routing tagged ``(key, (side, row))`` pairs through the real
shuffle machinery (:func:`repro.mapreduce.shuffle.run_reduce_phase`) so the fallback pays the
network cost the merge join avoids.  The chosen strategy is visible in ``explain()`` and in
the ``JOIN_MERGE_JOINS``/``JOIN_HASH_JOINS`` counters; both strategies produce bit-identical
output rows ``(key, *left non-key columns, *right non-key columns)`` in canonical order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.mapreduce.counters import Counters
from repro.mapreduce.job import JobConf, JobResult
from repro.mapreduce.shuffle import run_reduce_phase

if TYPE_CHECKING:  # only for annotations: systems and workloads import the engine back
    from repro.systems.base import BaseSystem, QueryResult
    from repro.workloads.query import Query

#: The two join strategies (``JoinQuery.strategy=None`` lets the planner choose).
STRATEGIES = ("merge", "hash")


@dataclass(frozen=True)
class JoinQuery:
    """A compiled equi-join between two uploaded datasets.

    Output rows are ``(key value, *left non-key columns, *right non-key columns)`` with each
    side's columns in its declared projection order, canonically sorted.  ``strategy`` forces
    a physical strategy (``"hash"`` is always legal; forcing ``"merge"`` on sides that are
    not co-partitioned raises), ``None`` lets the planner decide from ``Dir_rep``.

    Attributes
    ----------
    name:
        Short identifier used in reports.
    key:
        The equi-join attribute (must exist in both schemas).
    left_path / right_path:
        The two uploaded datasets.
    left / right:
        Per-side selection/projection scans (compiled :class:`~repro.workloads.query.Query`
        objects; their projections need not include the key — it is added internally).
    strategy:
        ``None`` (planner-chosen), ``"merge"`` or ``"hash"``.
    description:
        SQL label; rendered from the compiled form when omitted.
    """

    name: str
    key: str
    left_path: str
    right_path: str
    left: Query
    right: Query
    strategy: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.strategy is not None and self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown join strategy {self.strategy!r}; use one of {STRATEGIES} or None"
            )
        if not self.description:
            object.__setattr__(self, "description", self._render_sql())

    def _render_sql(self) -> str:
        from repro.workloads.query import _clause_sql  # lazy: workloads imports us back

        columns = [self.key]
        for side in (self.left, self.right):
            for column in side.projection or ():
                if column != self.key:
                    columns.append(column)
        sql = (
            f"SELECT {', '.join(columns) if columns else '*'} "
            f"FROM '{self.left_path}' JOIN '{self.right_path}' ON {self.key}"
        )
        clauses = []
        for side in (self.left, self.right):
            if side.predicate is not None:
                clauses.extend(_clause_sql(clause) for clause in side.predicate.clauses)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        return sql

    def side_query(self, side: str, schema) -> "Query":
        """The effective scan of one side: its query with the join key leading the projection."""
        from repro.workloads.query import Query  # lazy: workloads imports us back

        base = self.left if side == "left" else self.right
        declared = base.projection if base.projection is not None else tuple(schema.field_names)
        projection = (self.key,) + tuple(c for c in declared if c != self.key)
        return Query(
            name=f"{self.name}-{side}", predicate=base.predicate, projection=projection
        )


# --------------------------------------------------------------------------- planning
def co_partitioned(system: "BaseSystem", query: JoinQuery) -> bool:
    """Can both sides be merged map-side: every block of both paths has an alive replica
    indexed (sorted) on the join key?  A pure ``Dir_rep`` metadata check, like the planner."""
    namenode = system.hdfs.namenode
    for path in (query.left_path, query.right_path):
        for block_id in namenode.file_blocks(path):
            if not namenode.hosts_with_index(block_id, query.key, alive_only=True):
                return False
    return True


def choose_strategy(system: "BaseSystem", query: JoinQuery) -> str:
    """The strategy the join will execute with (honouring a forced ``query.strategy``)."""
    eligible = co_partitioned(system, query)
    if query.strategy == "merge":
        if not eligible:
            raise ValueError(
                f"join {query.name!r}: strategy='merge' forced but the sides are not "
                f"co-partitioned on {query.key!r} (a block lacks an alive indexed replica)"
            )
        return "merge"
    if query.strategy == "hash":
        return "hash"
    return "merge" if eligible else "hash"


# --------------------------------------------------------------------------- execution
def execute_join(system: "BaseSystem", query: JoinQuery, path: str) -> "QueryResult":
    """Run the equi-join: scan both sides through the system, then merge or shuffle-join.

    ``path`` must match ``query.left_path`` (the session resolves operator queries against
    one path; the right side is carried by the query itself).
    """
    from repro.systems.base import QueryResult

    if path != query.left_path:
        raise ValueError(
            f"join {query.name!r} was compiled for left path {query.left_path!r}, "
            f"got {path!r}"
        )
    strategy = choose_strategy(system, query)
    left_scan = system.run_query(
        query.side_query("left", system.schema_of(query.left_path)), query.left_path
    )
    right_scan = system.run_query(
        query.side_query("right", system.schema_of(query.right_path)), query.right_path
    )

    counters = Counters()
    counters.merge(left_scan.job.counters)
    counters.merge(right_scan.job.counters)

    if strategy == "merge":
        records, join_s = _merge_join(system, left_scan.records, right_scan.records, counters)
        counters.increment(Counters.JOIN_MERGE_JOINS)
    else:
        records, join_s = _hash_join(system, query, left_scan.records, right_scan.records, counters)
        counters.increment(Counters.JOIN_HASH_JOINS)
    counters.increment(Counters.JOIN_OUTPUT_RECORDS, len(records))
    records = sorted(records, key=repr)

    left_job, right_job = left_scan.job, right_scan.job
    job = JobResult(
        job_name=f"{system.name.lower()}-{query.name}[{strategy}]",
        output=[(None, row) for row in records],
        runtime_s=left_job.runtime_s + right_job.runtime_s + join_s,
        ideal_time_s=left_job.ideal_time_s + right_job.ideal_time_s,
        num_map_tasks=left_job.num_map_tasks + right_job.num_map_tasks,
        num_waves=left_job.num_waves + right_job.num_waves,
        avg_record_reader_s=(left_job.avg_record_reader_s + right_job.avg_record_reader_s) / 2,
        max_record_reader_s=max(left_job.max_record_reader_s, right_job.max_record_reader_s),
        total_record_reader_s=left_job.total_record_reader_s + right_job.total_record_reader_s,
        map_phase_s=left_job.map_phase_s + right_job.map_phase_s,
        reduce_phase_s=join_s,
        split_phase_s=left_job.split_phase_s + right_job.split_phase_s,
        counters=counters,
        task_results=list(left_job.task_results) + list(right_job.task_results),
    )
    return QueryResult(
        system=system.name, query_name=query.name, records=records, job=job, plan=None
    )


def _join_rows(left_rows: list[tuple], right_rows: list[tuple]) -> list[tuple]:
    """The joined rows (side scans emit the key first, so ``row[0]`` is the join key)."""
    by_key: dict = {}
    for row in left_rows:
        by_key.setdefault(row[0], []).append(row[1:])
    joined: list[tuple] = []
    for row in right_rows:
        for left_rest in by_key.get(row[0], ()):
            joined.append((row[0],) + left_rest + row[1:])
    return joined


def _merge_join(
    system: "BaseSystem", left_rows: list[tuple], right_rows: list[tuple], counters: Counters
) -> tuple[list[tuple], float]:
    """Map-side merge join: no shuffle, CPU-only merge of the two sorted streams."""
    rows = _join_rows(left_rows, right_rows)
    nodes = system.cluster.alive_nodes
    if not nodes:
        return rows, 0.0
    cost = system.cost
    merged_bytes = cost.scale_bytes((len(left_rows) + len(right_rows)) * 64.0)
    seconds = cost.task_overhead() + cost.cpu(nodes[0]).evaluate_predicate(merged_bytes)
    return rows, seconds


def _hash_join(
    system: "BaseSystem",
    query: JoinQuery,
    left_rows: list[tuple],
    right_rows: list[tuple],
    counters: Counters,
) -> tuple[list[tuple], float]:
    """Shuffle hash join: tagged pairs travel through the real shuffle/reduce machinery."""
    tagged = [(row[0], ("L", row[1:])) for row in left_rows]
    tagged += [(row[0], ("R", row[1:])) for row in right_rows]

    def join_reducer(key, values):
        lefts = [rest for side, rest in values if side == "L"]
        rights = [rest for side, rest in values if side == "R"]
        return [
            (key, (key,) + left_rest + right_rest)
            for left_rest in lefts
            for right_rest in rights
        ]

    shuffle_conf = JobConf(
        name=f"{query.name}-shuffle",
        input_path=query.left_path,
        reducer=join_reducer,
        num_reduce_tasks=max(1, len(system.cluster.alive_nodes)),
    )
    result = run_reduce_phase(tagged, shuffle_conf, system.cluster, system.cost, counters)
    return [row for _, row in result.output], result.duration_s


def explain_join(system: "BaseSystem", query: JoinQuery, path: str) -> str:
    """``EXPLAIN`` rendering: chosen strategy, the reason, and both sides' physical plans."""
    try:
        strategy = choose_strategy(system, query)
    except ValueError as error:
        return f"Join {query.name!r}: UNPLANNABLE — {error}"
    if strategy == "merge":
        reason = (
            f"co-partitioned: every block of both sides has an alive replica "
            f"indexed on {query.key!r} (no shuffle)"
        )
    elif co_partitioned(system, query):
        reason = "forced by strategy='hash' (sides are merge-eligible)"
    else:
        reason = (
            f"fallback: at least one block lacks an alive replica indexed on "
            f"{query.key!r} (tagged pairs shuffle to {max(1, len(system.cluster.alive_nodes))} "
            "reducers)"
        )
    header = [
        f"Join {query.name!r}: {query.description}",
        f"  strategy: {strategy} ({reason})",
    ]
    left = system.plan_query(
        query.side_query("left", system.schema_of(query.left_path)), query.left_path
    ).explain()
    right = system.plan_query(
        query.side_query("right", system.schema_of(query.right_path)), query.right_path
    ).explain()
    return "\n".join(
        header
        + ["  left side:"]
        + ["    " + line for line in left.splitlines()]
        + ["  right side:"]
        + ["    " + line for line in right.splitlines()]
    )
