"""Relational operators on top of the scan engine: group-by, equi-join, ranked top-k.

Each operator compiles to a frozen query object (:class:`GroupByQuery`, :class:`JoinQuery`,
:class:`TopKQuery`) that any system — stock Hadoop, Hadoop++ or HAIL — can execute through
the shared :func:`execute`/:func:`explain_operator` dispatch.  The operators push work into
the layers below instead of post-processing scan output: aggregation rides the map/reduce
shuffle with a map-side combiner, joins pick a shuffle-free merge strategy when ``Dir_rep``
proves both sides co-partitioned, and top-k terminates early on zone-range bounds.  All
operator output is deterministic (canonical ordering, explicit tie-breaks) so differential
tests can compare systems bit-for-bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

from repro.engine.operators.aggregate import (
    SUPPORTED_FUNCTIONS,
    AggregateSpec,
    GroupByQuery,
    execute_group_by,
    explain_group_by,
)
from repro.engine.operators.join import (
    STRATEGIES,
    JoinQuery,
    choose_strategy,
    co_partitioned,
    execute_join,
    explain_join,
)
from repro.engine.operators.topk import TopKQuery, execute_top_k, explain_top_k

if TYPE_CHECKING:  # only for annotations: systems import the engine back
    from repro.systems.base import BaseSystem, QueryResult

#: Any compiled relational-operator query the dispatch functions accept.
OperatorQuery = Union[GroupByQuery, JoinQuery, TopKQuery]

__all__ = [
    "SUPPORTED_FUNCTIONS",
    "STRATEGIES",
    "AggregateSpec",
    "GroupByQuery",
    "JoinQuery",
    "TopKQuery",
    "OperatorQuery",
    "choose_strategy",
    "co_partitioned",
    "execute",
    "execute_operator_query",
    "execute_group_by",
    "execute_join",
    "execute_top_k",
    "explain_operator",
    "explain_group_by",
    "explain_join",
    "explain_top_k",
]


def execute(system: "BaseSystem", query: OperatorQuery, path: str) -> "QueryResult":
    """Run any relational-operator query on ``system`` against the dataset at ``path``."""
    if isinstance(query, GroupByQuery):
        return execute_group_by(system, query, path)
    if isinstance(query, JoinQuery):
        return execute_join(system, query, path)
    if isinstance(query, TopKQuery):
        return execute_top_k(system, query, path)
    raise TypeError(f"not an operator query: {query!r}")


def explain_operator(system: "BaseSystem", query: OperatorQuery, path: str) -> str:
    """``EXPLAIN`` rendering of any relational-operator query without executing it."""
    if isinstance(query, GroupByQuery):
        return explain_group_by(system, query, path)
    if isinstance(query, JoinQuery):
        return explain_join(system, query, path)
    if isinstance(query, TopKQuery):
        return explain_top_k(system, query, path)
    raise TypeError(f"not an operator query: {query!r}")


#: Qualified alias for re-export from ``repro.engine`` (where a bare ``execute`` would read
#: ambiguously next to the executor's entry points).
execute_operator_query = execute
