"""The physical query planner.

The planner turns "which replica should this task open, and how should it read it?" — a decision
previously duplicated across three record readers — into an explicit :class:`BlockPlan` per
block and a :class:`QueryPlan` per query.  It is purely a metadata consumer: every decision is
answered from the namenode's directories (``Dir_block`` for replica placement, ``Dir_rep`` for
per-replica sort order and index, Section 3.3 of the paper), never by opening block payloads.

The planner absorbs the ``getHostsWithIndex`` logic of Section 4.3
(:func:`choose_indexed_host`, formerly ``repro.hail.scheduler``): both the JobTracker-facing
split computation and the record readers now share one implementation of the replica choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.engine.access_path import AccessPath, BlockPlan
from repro.engine.adaptive import AdaptiveJobContext
from repro.hdfs.filesystem import Hdfs
from repro.hdfs.namenode import NameNode
from repro.layouts.schema import Schema
from repro.layouts.zonemap import ranges_disjoint

#: Jobconf property that switches zone-map data skipping on for a job's readers.
ZONE_MAP_PROPERTY = "hail.zone.maps"

if TYPE_CHECKING:  # imported lazily at runtime: repro.hail's __init__ imports us back
    from repro.hail.annotation import HailQuery
    from repro.hail.predicate import Predicate


def choose_indexed_host(
    namenode: NameNode,
    block_id: int,
    attributes: Sequence[str],
    prefer_node: Optional[int] = None,
) -> Optional[tuple[int, str]]:
    """Pick a datanode whose replica of ``block_id`` is indexed on one of ``attributes``.

    Attributes are tried in the given order (the order of the predicate's clauses), so a
    conjunction like Bob-Q3 (``sourceIP = ... AND visitDate = ...``) uses the first filter
    attribute for which an index exists.  Among candidate datanodes, ``prefer_node`` wins when
    it is one of them (data locality), otherwise the namenode's first entry is used.

    Returns ``(datanode_id, attribute)`` or ``None`` when no alive replica has a matching index
    — in which case HAIL falls back to standard scanning and scheduling.
    """
    for attribute in attributes:
        hosts = namenode.hosts_with_index(block_id, attribute, alive_only=True)
        if not hosts:
            continue
        if prefer_node is not None and prefer_node in hosts:
            return prefer_node, attribute
        return hosts[0], attribute
    return None


@dataclass
class QueryPlan:
    """The physical plan of one query over one file: one :class:`BlockPlan` per block."""

    path: str
    filter_attributes: tuple[str, ...]
    projection: Optional[tuple[str, ...]]
    block_plans: list[BlockPlan] = field(default_factory=list)

    # ------------------------------------------------------------------ aggregates
    @property
    def num_blocks(self) -> int:
        """Number of blocks the query touches."""
        return len(self.block_plans)

    def count(self, access_path: AccessPath) -> int:
        """How many blocks use ``access_path``."""
        return sum(1 for plan in self.block_plans if plan.access_path is access_path)

    @property
    def num_index_scans(self) -> int:
        """Blocks answered via a clustered (or trojan) index."""
        return sum(1 for plan in self.block_plans if plan.uses_index)

    @property
    def index_coverage(self) -> float:
        """Fraction of blocks answered via an index (1.0 right after a full HAIL upload)."""
        if not self.block_plans:
            return 0.0
        return self.num_index_scans / len(self.block_plans)

    def plan_for(self, block_id: int) -> Optional[BlockPlan]:
        """The per-block plan for ``block_id``, or ``None``."""
        for plan in self.block_plans:
            if plan.block_id == block_id:
                return plan
        return None

    # ------------------------------------------------------------------ rendering
    def explain(self) -> str:
        """Human-readable plan rendering (access path and chosen replica per block)."""
        header = [f"QueryPlan for {self.path!r}"]
        if self.filter_attributes:
            header.append(f"  filter attributes: {', '.join(self.filter_attributes)}")
        else:
            header.append("  filter attributes: (none — scan job)")
        if self.projection is not None:
            header.append(f"  projection: {', '.join(self.projection)}")
        else:
            header.append("  projection: * (all attributes)")
        lines = ["  " + plan.describe() for plan in self.block_plans]
        tally = ", ".join(
            f"{self.count(path)} {path.value}" for path in AccessPath if self.count(path)
        ) or "no blocks"
        footer = [f"  {self.num_blocks} blocks: {tally}"]
        return "\n".join(header + lines + footer)

    def summary(self) -> dict:
        """Compact dictionary form for reports."""
        return {
            "path": self.path,
            "blocks": self.num_blocks,
            "index_scans": self.count(AccessPath.INDEX_SCAN),
            "trojan_index_scans": self.count(AccessPath.TROJAN_INDEX_SCAN),
            "pax_projection_scans": self.count(AccessPath.PAX_PROJECTION_SCAN),
            "full_scans": self.count(AccessPath.FULL_SCAN),
            # Counts every plan that stages a build — pay-forward scans *and* piggyback
            # builds riding on index scans — matching describe()'s "+build(...)" markers
            # and the ADAPTIVE_INDEX_BUILDS job counter.
            "adaptive_index_builds": sum(1 for plan in self.block_plans if plan.builds_index),
            "zone_map_skips": self.count(AccessPath.ZONE_MAP_SKIP),
            "index_coverage": self.index_coverage,
        }


class PhysicalPlanner:
    """Chooses, per block, the replica to open and the access path to read it with.

    The replica preference order reproduces the behaviour the three record readers previously
    implemented independently:

    1. the split's *preferred* replica, when it is still alive (set by the input format's split
       computation so tasks land on the replica the JobTracker scheduled them close to);
    2. an alive replica whose clustered index matches one of the query's filter attributes
       (:func:`choose_indexed_host`, preferring the executing node);
    3. the executing node's local replica;
    4. any alive replica (the namenode's first entry).

    With ``zone_maps`` enabled, a block whose registered ``Dir_rep`` synopsis
    (``HailBlockReplicaInfo.zone_ranges``) proves the predicate can match no row is planned as
    :attr:`AccessPath.ZONE_MAP_SKIP` before any access-path classification: the reader opens
    the replica only to verify the synopsis (fail-closed) and surface bad records.  The
    planner stays a pure metadata consumer — the skip decision reads ``Dir_rep`` only, never
    a payload.
    """

    def __init__(self, hdfs: Hdfs, zone_maps: bool = False) -> None:
        self.hdfs = hdfs
        #: When True, blocks provably disjoint from the predicate plan as ZONE_MAP_SKIP.
        self.zone_maps = zone_maps

    # ------------------------------------------------------------------ per-query planning
    def query_frame(self, path: str, annotation: Optional[HailQuery] = None) -> QueryPlan:
        """An empty :class:`QueryPlan` for ``path`` with filter/projection metadata bound.

        Used both by :meth:`plan_query` and by callers that fill ``block_plans`` with the
        plans a job actually executed (``BaseSystem.run_query``).
        """
        namenode = self.hdfs.namenode
        block_ids = namenode.file_blocks(path)
        schema = namenode.logical_block(block_ids[0]).schema if block_ids else None
        predicate = self._bound_predicate(annotation, schema)
        projection = self._bound_projection(annotation, schema)
        attributes = tuple(predicate.attributes(schema)) if predicate is not None else ()
        return QueryPlan(path=path, filter_attributes=attributes, projection=projection)

    def plan_query(
        self,
        path: str,
        annotation: Optional[HailQuery] = None,
        prefer_node: Optional[int] = None,
        preferred_replicas: Optional[dict[int, int]] = None,
    ) -> QueryPlan:
        """Plan every block of ``path`` for the query described by ``annotation``."""
        namenode = self.hdfs.namenode
        block_ids = namenode.file_blocks(path)
        schema = namenode.logical_block(block_ids[0]).schema if block_ids else None
        predicate = self._bound_predicate(annotation, schema)
        projection = self._bound_projection(annotation, schema)
        plan = self.query_frame(path, annotation)
        preferred_replicas = preferred_replicas or {}
        for block_id in block_ids:
            plan.block_plans.append(
                self._plan_block(
                    block_id,
                    schema,
                    predicate,
                    projection,
                    preferred=preferred_replicas.get(block_id),
                    prefer_node=prefer_node,
                )
            )
        return plan

    def plan_block(
        self,
        block_id: int,
        annotation: Optional[HailQuery] = None,
        preferred: Optional[int] = None,
        prefer_node: Optional[int] = None,
        adaptive: Optional[AdaptiveJobContext] = None,
    ) -> BlockPlan:
        """Plan a single block (the record readers' entry point).

        ``adaptive`` is the job's adaptive-indexing policy; asking it charges the job's build
        budget, which is why only the record readers (which execute what they plan) pass it —
        the split-phase :meth:`plan_query` pass never does.
        """
        schema = self.hdfs.namenode.logical_block(block_id).schema
        predicate = self._bound_predicate(annotation, schema)
        projection = self._bound_projection(annotation, schema)
        return self._plan_block(
            block_id,
            schema,
            predicate,
            projection,
            preferred=preferred,
            prefer_node=prefer_node,
            adaptive=adaptive,
        )

    def filter_attributes(self, path: str, annotation: Optional[HailQuery]) -> list[str]:
        """The query's filter attribute names (empty for jobs without a selection predicate)."""
        block_ids = self.hdfs.namenode.file_blocks(path)
        if not block_ids:
            return []
        schema = self.hdfs.namenode.logical_block(block_ids[0]).schema
        predicate = self._bound_predicate(annotation, schema)
        if predicate is None:
            return []
        return predicate.attributes(schema)

    # ------------------------------------------------------------------ internals
    def _plan_block(
        self,
        block_id: int,
        schema: Optional[Schema],
        predicate: Optional[Predicate],
        projection: Optional[tuple[str, ...]],
        preferred: Optional[int],
        prefer_node: Optional[int],
        adaptive: Optional[AdaptiveJobContext] = None,
    ) -> BlockPlan:
        namenode = self.hdfs.namenode
        hosts = namenode.block_datanodes(block_id, alive_only=True)
        if not hosts:
            return BlockPlan(
                block_id=block_id,
                access_path=AccessPath.FULL_SCAN,
                datanode_id=-1,
                fallback_reason="no alive replica",
            )

        if preferred is not None and preferred in hosts:
            datanode_id = preferred
        else:
            choice = None
            if predicate is not None:
                choice = choose_indexed_host(
                    namenode, block_id, predicate.attributes(schema), prefer_node=prefer_node
                )
            if choice is not None:
                datanode_id = choice[0]
            elif prefer_node is not None and prefer_node in hosts:
                datanode_id = prefer_node
            else:
                datanode_id = hosts[0]

        if self.zone_maps and predicate is not None and schema is not None:
            skip_attribute = self._zone_map_skip(block_id, datanode_id, predicate, schema)
            if skip_attribute is not None:
                # Classified before any adaptive-build marking: a block no row of which can
                # match must neither stage a build nor count as an index-scan fallback.
                return BlockPlan(
                    block_id=block_id,
                    access_path=AccessPath.ZONE_MAP_SKIP,
                    datanode_id=datanode_id,
                    attribute=skip_attribute,
                    estimated_rows=0,
                    estimated_bytes=0,
                )

        plan = self._classify(block_id, datanode_id, schema, predicate, projection, None)
        if plan.uses_index and adaptive is not None and adaptive.record_usage:
            # LRU bookkeeping for the lifecycle manager: this replica's index was chosen by a
            # plan that will actually execute.  ``adaptive`` marks the execution path (only
            # record readers pass it), so read-only passes — ``explain()``, the split-phase
            # ``plan_query`` — never skew the eviction order; ``record_usage`` is off during
            # the failure runner's discarded baseline probe; and the per-run memo keeps
            # rescheduled/speculative attempts from double-counting a use.
            if (block_id, datanode_id) not in adaptive.usage_touches:
                adaptive.usage_touches.add((block_id, datanode_id))
                namenode.touch_index_usage(block_id, datanode_id)
        if predicate is not None and schema is not None:
            if not plan.uses_index:
                plan.fallback_reason = self._fallback_reason(
                    block_id, predicate.attributes(schema)
                )
                self._mark_adaptive_build(plan, predicate, schema, adaptive)
            else:
                self._mark_secondary_build(plan, predicate, schema, adaptive)
        return plan

    def _zone_map_skip(
        self, block_id: int, datanode_id: int, predicate: Predicate, schema: Schema
    ) -> Optional[str]:
        """The attribute whose ``Dir_rep`` zone proves the block cannot match, or ``None``.

        Pure metadata: only the registered block-level ranges are consulted.  Every doubt —
        no synopsis, an uncovered attribute, uncomparable operands — answers ``None`` (scan),
        and the executor independently re-verifies any skip against the payload's own zone
        map, so a stale entry here can cost a scan but never a row.
        """
        info = self.hdfs.namenode.replica_info(block_id, datanode_id)
        ranges = getattr(info, "zone_ranges", None)
        if not ranges:
            return None
        zones = {name: (low, high) for name, low, high in ranges}
        for clause in predicate.clauses:
            try:
                name = schema.fields[clause.attribute_index(schema)].name
            except (KeyError, IndexError):
                continue
            zone = zones.get(name)
            if zone is None:
                continue
            low, high = clause.value_range()
            if ranges_disjoint(low, high, zone[0], zone[1]):
                return name
        return None

    def _fallback_reason(self, block_id: int, attributes: Sequence[str]) -> str:
        """Why no index scan was possible: never indexed, lost to a failure, or evicted.

        A block whose matching replica sits on a dead datanode (the Figure 8 failover
        situation) reads very differently from one whose adaptive index was dropped by
        disk-pressure eviction — and both differ from a block that was never indexed — so
        ``explain()`` distinguishes all three and names the datanodes involved.
        """
        namenode = self.hdfs.namenode
        for attribute in attributes:
            all_hosts = namenode.hosts_with_index(block_id, attribute, alive_only=False)
            if not all_hosts:
                evicted_from = namenode.index_eviction(block_id, attribute)
                if evicted_from is not None:
                    return (
                        f"indexed replica of {attribute} evicted "
                        f"(disk pressure on dn{evicted_from})"
                    )
                continue
            dead = [
                host for host in all_hosts if not self.hdfs.cluster.node(host).is_alive
            ]
            if dead and len(dead) == len(all_hosts):
                lost = "/".join(f"dn{host}" for host in dead)
                return f"indexed replica of {attribute} lost ({lost} dead)"
        return "no replica indexed on " + "/".join(attributes)

    @staticmethod
    def _mark_adaptive_build(
        plan: BlockPlan,
        predicate: Predicate,
        schema: Schema,
        adaptive: Optional[AdaptiveJobContext],
    ) -> None:
        """Upgrade an index-less scan to an :attr:`ADAPTIVE_INDEX_BUILD` when the policy offers.

        The build targets the first filter attribute — the same preference order
        :func:`choose_indexed_host` uses — so repeated queries converge on the attribute the
        workload actually filters by.
        """
        if adaptive is None or plan.datanode_id < 0:
            return
        if plan.access_path not in (AccessPath.FULL_SCAN, AccessPath.PAX_PROJECTION_SCAN):
            return
        attributes = predicate.attributes(schema)
        if not attributes:
            return
        attribute = attributes[0]
        if adaptive.offers(plan.block_id, attribute):
            plan.access_path = AccessPath.ADAPTIVE_INDEX_BUILD
            plan.build_attribute = attribute

    def _mark_secondary_build(
        self,
        plan: BlockPlan,
        predicate: Predicate,
        schema: Schema,
        adaptive: Optional[AdaptiveJobContext],
    ) -> None:
        """Offer a *piggyback* build on the next uncovered filter attribute (multi-attribute).

        The block is already answered via an index on one of the query's filter attributes; a
        conjunctive predicate may still carry attributes no replica is indexed on.  Under
        ``adaptive_multi_attribute`` the scan's executor — which holds the block anyway —
        builds the missing index as a by-product, so mixed-predicate workloads converge to
        multi-index coverage instead of forever index-scanning on one attribute.  The plan's
        access path stays an index scan; only ``build_attribute`` marks the piggyback work.
        """
        if adaptive is None or not adaptive.multi_attribute or plan.datanode_id < 0:
            return
        namenode = self.hdfs.namenode
        for attribute in predicate.attributes(schema):
            if attribute == plan.attribute:
                continue
            if namenode.hosts_with_index(plan.block_id, attribute, alive_only=True):
                continue
            if adaptive.offers(plan.block_id, attribute):
                plan.build_attribute = attribute
            return  # at most one piggyback build per block scan

    def _classify(
        self,
        block_id: int,
        datanode_id: int,
        schema: Optional[Schema],
        predicate: Optional[Predicate],
        projection: Optional[tuple[str, ...]],
        fallback_reason: Optional[str],
    ) -> BlockPlan:
        """Derive the access path of the chosen replica from the namenode's ``Dir_rep``."""
        namenode = self.hdfs.namenode
        info = namenode.replica_info(block_id, datanode_id)
        logical = namenode.logical_block(block_id)
        num_records = getattr(info, "num_records", None) or len(logical.records)
        block_bytes = getattr(info, "block_size_bytes", None) or logical.text_size_bytes

        indexed_attribute = getattr(info, "indexed_attribute", None)
        index_type = getattr(info, "index_type", None)
        pax_layout = getattr(info, "pax_layout", info is not None)

        attribute: Optional[str] = None
        if (
            predicate is not None
            and indexed_attribute is not None
            and schema is not None
            and predicate.clause_for(indexed_attribute, schema) is not None
        ):
            attribute = indexed_attribute
            access_path = (
                AccessPath.TROJAN_INDEX_SCAN if index_type == "trojan" else AccessPath.INDEX_SCAN
            )
            fallback_reason = None
        elif pax_layout and projection is not None:
            # Only a projection prunes minipages: a predicate-only scan must still read every
            # column to reconstruct the full tuples it emits.
            access_path = AccessPath.PAX_PROJECTION_SCAN
        else:
            access_path = AccessPath.FULL_SCAN

        return BlockPlan(
            block_id=block_id,
            access_path=access_path,
            datanode_id=datanode_id,
            attribute=attribute,
            estimated_rows=num_records,
            estimated_bytes=block_bytes,
            fallback_reason=fallback_reason,
        )

    @staticmethod
    def _bound_predicate(
        annotation: Optional[HailQuery], schema: Optional[Schema]
    ) -> Optional[Predicate]:
        if annotation is None or annotation.filter is None or schema is None:
            return None
        return annotation.bound_filter(schema)

    @staticmethod
    def _bound_projection(
        annotation: Optional[HailQuery], schema: Optional[Schema]
    ) -> Optional[tuple[str, ...]]:
        if annotation is None or annotation.projection is None or schema is None:
            return None
        names = annotation.projection_names(schema)
        return tuple(names) if names is not None else None
