"""Adaptive (lazy) indexing: full scans pay forward.

HAIL's follow-up work (LIAH, "Towards Zero-Overhead Static and Adaptive Indexing in Hadoop")
extends the upload-time indexes with indexes built *incrementally as a side effect of query
execution*: whenever a map task has to fall back to scanning a block, it already holds the
block's data in memory — sorting it and writing an indexed replica costs only the incremental
sort/index/write work, and every query after that answers the block with an index scan.  Under
any stable workload the system therefore converges to the fully indexed state without a single
dedicated indexing job.

This module carries the pieces of that feedback loop that are *not* tied to the HAIL package:

- :class:`AdaptiveJobContext` — the per-job policy (offer rate, build budget) the planner
  consults before it upgrades a scan to :attr:`~repro.engine.access_path.AccessPath.ADAPTIVE_INDEX_BUILD`;
- :class:`PendingIndexBuild` — an index build *staged* by the executor.  Builds are never
  applied to HDFS while the map phase runs: a speculative or soon-to-be-killed attempt must not
  leave half-registered state behind, so the replica and its ``Dir_rep`` entry travel with the
  task result instead;
- :func:`commit_adaptive_builds` — the failure-safe registration step.  The scheduler calls it
  once per job with the *surviving* attempts only; builds of lost attempts simply never reach
  the namenode, duplicate builds of rescheduled/speculative attempts are deduplicated, and the
  replica store + ``Dir_rep`` registration happen together so the directory can never point at
  a replica that was not flushed.  Placement never evicts an existing index: when the executing
  node's replica slot is occupied by a replica indexed on another attribute, the adaptive
  replica is registered on a different host (the shipping is metadata-level — its transfer cost
  is not modelled, only the build/flush cost the executor already charged).
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Iterable, Optional

if TYPE_CHECKING:  # only for annotations: keep this module import-light
    from repro.hdfs.filesystem import Hdfs

#: Key under which the per-job :class:`AdaptiveJobContext` travels in ``JobConf.properties``.
ADAPTIVE_PROPERTY = "hail.adaptive"

#: Process-wide salt source for fallback contexts (jobs built without ``HailSystem``): every
#: fallback context gets a fresh salt even when each job constructs its own input format, so
#: low offer rates still converge.  Deterministic for a fixed sequence of jobs in a process.
_FALLBACK_SALTS = itertools.count()


def next_fallback_salt() -> int:
    """The next unused salt for a fallback :class:`AdaptiveJobContext`."""
    return next(_FALLBACK_SALTS)


def offer_draw(salt: int, block_id: int, attribute: str) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one ``(job, block, attribute)`` offer.

    ``random.random()`` would make repeated experiments non-reproducible and — worse — make the
    failure runner's baseline probe diverge from the measured run.  A CRC over the identifying
    triple gives a stable pseudo-uniform value instead; the per-job ``salt`` makes sure a block
    that was not offered in one query can still be offered by a later one (otherwise low offer
    rates could never converge to full coverage).
    """
    token = f"{salt}:{block_id}:{attribute}".encode("utf-8")
    return (zlib.crc32(token) & 0xFFFFFFFF) / 2.0**32


@dataclass
class AdaptiveJobContext:
    """Per-job adaptive-indexing policy: offer rate plus an indexing budget.

    One context is installed into ``JobConf.properties[ADAPTIVE_PROPERTY]`` per job (the HAIL
    system gives every job a fresh ``salt``); record readers hand it to the planner, which asks
    :meth:`offers` before upgrading a scan to an :attr:`ADAPTIVE_INDEX_BUILD`.  Because the
    simulated map phase may run twice for one job (the failure runner probes an undisturbed
    baseline first), :meth:`begin_run` resets the budget at the start of every run — both runs
    then make identical offers.
    """

    offer_rate: float = 1.0
    budget: Optional[int] = None
    salt: int = 0
    builds_offered: int = 0
    #: Per-attribute offer rates (the split tuner ledgers' live knobs): when the deployment
    #: tunes per attribute, :meth:`offers` looks the build attribute up here and falls back
    #: to the scalar ``offer_rate`` only for attributes the tuner has no ledger for yet.
    attribute_offer_rates: dict = field(default_factory=dict)
    #: Multi-attribute convergence: when a block is already answered via an index on one filter
    #: attribute, the planner may additionally offer a *piggyback* build on the query's next
    #: uncovered filter attribute, so mixed-predicate workloads converge to multi-index
    #: coverage (see :meth:`PhysicalPlanner._mark_secondary_build`).
    multi_attribute: bool = False
    #: Measure counterfactual scan savings for adaptive-index scans (the lifecycle tuner's
    #: benefit ledger).  Off unless the deployment auto-tunes: the measurement costs a second
    #: cost-model evaluation per adaptive-index scan, wasted when nothing consumes it.
    measure_savings: bool = False
    #: Record per-replica index uses in the namenode (the LRU statistics eviction orders by).
    #: The runner flips this off for the failure runner's baseline probe, whose side effects
    #: are discarded — otherwise every use would be double-counted by the probe+measured pair.
    record_usage: bool = True
    #: Functionally compute chunk checksums for staged replicas (mirrors the upload pipeline's
    #: ``HailConfig.verify_checksums``; the checksum *cost* is charged either way).
    verify_checksums: bool = False
    #: Memoized per-run decisions, keyed by ``(block_id, attribute)``: a rescheduled or
    #: speculative attempt that re-plans a block gets the original answer back instead of
    #: charging the budget a second time.
    decisions: dict = field(default_factory=dict)
    #: Replicas whose index use was already recorded this run, keyed by
    #: ``(block_id, datanode_id)``: rescheduled/speculative attempts re-plan blocks, and a
    #: second ``touch_index_usage`` per run would skew the LRU eviction statistics the same
    #: way a double-charged budget would skew the offers.
    usage_touches: set = field(default_factory=set)

    @classmethod
    def from_config(cls, config: Any, salt: int = 0) -> "AdaptiveJobContext":
        """Context snapshotting the adaptivity knobs of a ``HailConfig``."""
        return cls(
            offer_rate=config.adaptive_offer_rate,
            budget=config.adaptive_budget_per_job,
            salt=salt,
            verify_checksums=config.verify_checksums,
            multi_attribute=getattr(config, "adaptive_multi_attribute", False),
        )

    def begin_run(self) -> None:
        """Reset the per-run budget and decisions (the input format calls this at job start)."""
        self.builds_offered = 0
        self.decisions.clear()
        self.usage_touches.clear()

    def refund(self, block_id: int, attribute: str) -> None:
        """Return one charged offer (the executor cancelled the build, e.g. stale Dir_rep).

        The decision is memoized as "no" so a rescheduled attempt does not re-charge the slot
        for a block whose build was already found unnecessary.
        """
        if self.decisions.get((block_id, attribute)):
            self.decisions[(block_id, attribute)] = False
            self.builds_offered = max(0, self.builds_offered - 1)

    def offers(self, block_id: int, attribute: str) -> bool:
        """Deterministically decide whether this block's scan should build an index.

        Charges the job budget when it says yes, so callers must only ask for blocks they are
        actually about to execute (the planner asks from the record reader, never during the
        split-phase planning pass).  Decisions are memoized per run: a rescheduled attempt
        re-planning the same block neither double-charges the budget nor gets a different
        answer than the attempt it replaces.
        """
        key = (block_id, attribute)
        if key in self.decisions:
            return self.decisions[key]
        rate = self.attribute_offer_rates.get(attribute, self.offer_rate)
        decision = True
        if self.budget is not None and self.builds_offered >= self.budget:
            decision = False
        elif offer_draw(self.salt, block_id, attribute) >= rate:
            decision = False
        if decision:
            self.builds_offered += 1
        self.decisions[key] = decision
        return decision


@dataclass(frozen=True)
class PendingIndexBuild:
    """One staged adaptive index build: an indexed replica waiting for failure-safe commit.

    ``replica`` (a :class:`~repro.hdfs.block.Replica` whose payload is the sorted + indexed
    ``HailBlock``) and ``info`` (its ``HAILBlockReplicaInfo`` with ``origin="adaptive"``) are
    fully built by the executor; committing is pure metadata work.
    """

    block_id: int
    datanode_id: int
    attribute: str
    replica: Any
    info: Any
    build_seconds: float
    bytes_written: float
    #: Bytes of the columns the build fetched beyond what its scan already read.
    bytes_read: float = 0.0


@dataclass
class AdaptiveCommitReport:
    """What :func:`commit_adaptive_builds` did with the staged builds of one job."""

    committed: list[PendingIndexBuild] = field(default_factory=list)
    skipped_duplicate: int = 0
    skipped_dead_node: int = 0
    skipped_already_indexed: int = 0
    skipped_no_placement: int = 0

    @property
    def num_committed(self) -> int:
        """Number of adaptive indexes registered with the namenode."""
        return len(self.committed)

    @property
    def total_build_seconds(self) -> float:
        """Simulated seconds the committed builds charged their scans (the tuner's cost side)."""
        return sum(build.build_seconds for build in self.committed)

    @property
    def total_bytes_written(self) -> float:
        """Replica bytes the committed builds flushed (disk-pressure bookkeeping)."""
        return sum(build.bytes_written for build in self.committed)


def commit_adaptive_builds(hdfs: "Hdfs", attempts: Iterable[Any]) -> AdaptiveCommitReport:
    """Register the adaptive indexes built by the *surviving* map-task attempts of one job.

    Failure safety comes from three properties:

    - builds of attempts lost to a node failure never appear in ``attempts`` (the scheduler
      discards them before re-executing the task), so a dying datanode cannot leave a
      half-registered index behind;
    - a build whose target datanode is dead by commit time is dropped — ``Dir_rep`` never
      references a replica on a node that cannot serve it;
    - the replica store and the ``Dir_rep`` registration happen back-to-back per build, and
      duplicate builds of the same ``(block, attribute)`` (speculative or rescheduled attempts
      that scanned the same block twice) are committed exactly once.
    """
    report = AdaptiveCommitReport()
    committed_keys: set[tuple[int, str]] = set()
    namenode = hdfs.namenode
    for attempt in attempts:
        for build in getattr(attempt.result, "adaptive_builds", ()):
            key = (build.block_id, build.attribute)
            if key in committed_keys:
                report.skipped_duplicate += 1
                continue
            if not hdfs.cluster.node(build.datanode_id).is_alive:
                report.skipped_dead_node += 1
                continue
            if namenode.hosts_with_index(build.block_id, build.attribute, alive_only=True):
                # An earlier job (or an earlier block of this commit pass) already registered
                # an alive replica indexed on this attribute; don't build it twice.
                report.skipped_already_indexed += 1
                committed_keys.add(key)
                continue
            target = _placement(hdfs, build)
            if target is None:
                # No placement without evicting an index: keep any stale dead replica of this
                # (block, attribute) — the node's revival restores it (Figure 8 semantics).
                report.skipped_no_placement += 1
                continue
            # This build replaces an adaptive index lost to a node failure (that is why the
            # alive check above came up empty): drop the stale entry so the node's revival
            # cannot resurrect a duplicate (block, attribute) index.  Only now that a target
            # exists — dropping first could destroy the index's last copy.
            _drop_stale_adaptive_replicas(hdfs, build.block_id, build.attribute)
            datanode = hdfs.datanode(target)
            displaced = datanode.has_replica(build.block_id)
            if displaced:
                # The target holds an *unindexed* replica (placement guarantees it): the
                # sorted + indexed replica replaces it — HAIL replicas differ physically
                # anyway, and the logical content is unchanged.  Otherwise the build adds a
                # brand-new replica to Dir_block.
                datanode.delete_replica(build.block_id)
            replica = build.replica
            # Remember the displacement so a later disk-pressure eviction downgrades this
            # replica back to a plain one instead of deleting the block's copy outright.
            info = replace(build.info, displaced_plain_replica=displaced)
            if target != build.datanode_id:
                replica = replace(replica, datanode_id=target)
                info = replace(info, datanode_id=target)
            datanode.store_replica(replica)
            namenode.register_replica(build.block_id, target, replica_info=info)
            # Creation counts as a use for the LRU statistics: a just-built index has no scan
            # behind it yet, and without this touch it would look like the *coldest* entry and
            # be the first thing disk-pressure eviction throws away — before ever paying off.
            namenode.touch_index_usage(build.block_id, target)
            if hdfs.persist is not None:
                # Per-build journal sync: the new adaptive replica is durable the moment it
                # is registered, so a crash between builds loses later builds wholesale
                # but never leaves this one half-registered.
                hdfs.persist.sync_block(hdfs, build.block_id, site="mid_adaptive_commit")
            committed_keys.add(key)
            report.committed.append(build)
    return report


def _drop_stale_adaptive_replicas(hdfs: "Hdfs", block_id: int, attribute: str) -> None:
    """Garbage-collect *dead* adaptive replicas of ``(block, attribute)`` before a rebuild.

    Only adaptive entries are dropped: an upload-time indexed replica on a dead node comes back
    with the node's revival (the Figure 8 failover semantics), whereas a superseded adaptive
    replica would resurrect as a duplicate of the rebuild committed below.
    """
    namenode = hdfs.namenode
    for datanode_id in list(
        namenode.hosts_with_index(block_id, attribute, alive_only=False)
    ):
        if hdfs.cluster.node(datanode_id).is_alive:
            continue
        info = namenode.replica_info(block_id, datanode_id)
        if info is not None and getattr(info, "is_adaptive", False):
            namenode.unregister_replica(block_id, datanode_id)
            hdfs.datanode(datanode_id).delete_replica(block_id)


def _placement(hdfs: "Hdfs", build: PendingIndexBuild) -> Optional[int]:
    """The datanode the adaptive replica lands on — never evicting an existing index.

    The executing node is preferred (the build was flushed there), but only when its replica of
    the block is unindexed (or it holds none): replacing the cluster's only replica indexed on
    a *different* attribute would trade one index for another and permanently destroy
    upload-time work.  In that case the replica is registered on another alive host with an
    unindexed replica, or on a node without any replica of the block (the shipping is
    metadata-level in this simulation; see the module docstring).  ``None`` when every
    placement would evict an index.
    """
    namenode = hdfs.namenode

    def holds_indexed_replica(datanode_id: int) -> bool:
        info = namenode.replica_info(build.block_id, datanode_id)
        return info is not None and getattr(info, "indexed_attribute", None) is not None

    if not holds_indexed_replica(build.datanode_id):
        return build.datanode_id
    for host in namenode.block_datanodes(build.block_id, alive_only=True):
        if not holds_indexed_replica(host):
            return host
    replica_hosts = set(namenode.block_datanodes(build.block_id, alive_only=False))
    for node in hdfs.cluster.alive_nodes:
        if node.node_id not in replica_hosts:
            return node.node_id
    return None
