"""Access paths and per-block physical plans.

HAIL's core runtime decision (Sections 4.1–4.3 of the paper) is made *per block*: which replica
to open and how to read it — via the replica's clustered index, via a PAX projection scan that
touches only the needed minipages, or via a plain full scan.  Historically that decision was
buried inside the record readers; here it is an explicit, inspectable plan object so that
schedulers, readers and reports all share one source of truth (and so that ``explain()`` can
show what a query will actually do before it runs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class AccessPath(enum.Enum):
    """How one block of the input is physically read."""

    #: Range lookup in the replica's sparse clustered index, then read only the qualifying
    #: PAX partitions of the needed columns (HAIL, Section 4.3 / Figure 2).
    INDEX_SCAN = "index_scan"
    #: No usable index, but the replica is stored in PAX: scan only the columns the predicate
    #: and projection touch, skipping all other minipages.
    PAX_PROJECTION_SCAN = "pax_projection_scan"
    #: Read the whole block and examine every record (stock Hadoop text blocks, or row-layout
    #: binary blocks without a matching index).
    FULL_SCAN = "full_scan"
    #: Range lookup in a Hadoop++ trojan index over a row-layout block: one contiguous row
    #: range, no per-column pruning and no PAX tuple reconstruction (Section 2 / Figure 7(b)).
    TROJAN_INDEX_SCAN = "trojan_index_scan"
    #: A scan that *pays forward* (LIAH-style adaptive indexing): the block is answered exactly
    #: like a full/projection scan, but as a by-product the executor sorts the data it read,
    #: builds a clustered index on the filter attribute and stages an indexed replica so that
    #: subsequent queries on this block upgrade to :attr:`INDEX_SCAN`.
    ADAPTIVE_INDEX_BUILD = "adaptive_index_build"
    #: The block's ``Dir_rep`` zone-map synopsis proves no row can satisfy the predicate: the
    #: reader opens the replica only to verify the synopsis against the payload (fail-closed)
    #: and to surface bad records, reading no data columns at all.  A verification mismatch
    #: degrades the block to a full scan at execution time.
    ZONE_MAP_SKIP = "zone_map_skip"

    @property
    def uses_index(self) -> bool:
        """True for the two index-backed access paths (an adaptive build still *scans*)."""
        return self in (AccessPath.INDEX_SCAN, AccessPath.TROJAN_INDEX_SCAN)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.value


@dataclass
class BlockPlan:
    """The physical plan for one block: chosen replica plus access path.

    Attributes
    ----------
    block_id:
        The logical HDFS block this plan reads.
    access_path:
        How the block is read (see :class:`AccessPath`).
    datanode_id:
        Datanode whose replica the reader opens (``-1`` when no alive replica exists; opening
        such a plan raises the usual ``ReplicaNotFoundError``).
    attribute:
        Index attribute the access path exploits (``None`` for scans).
    estimated_rows:
        Records the executor is expected to examine (from the namenode's ``Dir_rep``; the whole
        block for scans — index scans refine this at execution time).
    estimated_bytes:
        Replica bytes the access path is expected to touch.
    fallback_reason:
        Why a cheaper access path was *not* chosen (``None`` when the best path was available),
        e.g. ``"no replica indexed on visitDate"`` or — for blocks whose indexed replica exists
        but sits on a dead datanode — ``"indexed replica of visitDate lost (dn2 dead)"``.
    build_attribute:
        The attribute whose clustered index this block's execution builds as a by-product
        (``None`` when nothing is built).  Set for :attr:`AccessPath.ADAPTIVE_INDEX_BUILD`
        plans, and — under multi-attribute convergence — for index scans that *piggyback* a
        build on a second, still-uncovered filter attribute.
    build_seconds:
        Simulated seconds the adaptive build added on top of the plain scan (sort, index
        construction, replica write) — the incremental "indexing penalty" of LIAH's Figure-style
        convergence curves.
    """

    block_id: int
    access_path: AccessPath
    datanode_id: int
    attribute: Optional[str] = None
    estimated_rows: float = 0.0
    estimated_bytes: float = 0.0
    fallback_reason: Optional[str] = None
    build_attribute: Optional[str] = None
    build_seconds: float = 0.0

    @property
    def uses_index(self) -> bool:
        """True when this plan answers the block with an index scan."""
        return self.access_path.uses_index

    @property
    def builds_index(self) -> bool:
        """True when this plan builds an adaptive index as a by-product of its execution.

        Either the access path itself is :attr:`AccessPath.ADAPTIVE_INDEX_BUILD` (a scan that
        pays forward), or an index scan carries a piggyback ``build_attribute`` (multi-attribute
        convergence).
        """
        return (
            self.access_path is AccessPath.ADAPTIVE_INDEX_BUILD
            or self.build_attribute is not None
        )

    def describe(self) -> str:
        """One-line rendering used by :meth:`QueryPlan.explain`."""
        target = f"replica@dn{self.datanode_id}" if self.datanode_id >= 0 else "no-replica"
        parts = [f"block {self.block_id}: {self.access_path.value:<19} {target}"]
        if self.attribute is not None:
            parts.append(f"on {self.attribute}")
        parts.append(f"~{int(self.estimated_rows)} rows, ~{int(self.estimated_bytes)} B")
        if self.builds_index and self.build_attribute is not None:
            parts.append(f"+build({self.build_attribute})")
        if self.fallback_reason:
            parts.append(f"[{self.fallback_reason}]")
        return "  ".join(parts)
