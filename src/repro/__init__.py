"""Reproduction of "Only Aggressive Elephants are Fast Elephants" (HAIL, VLDB 2012).

The package is organised as a stack of subsystems, mirroring the paper:

- :mod:`repro.cluster`    -- cluster hardware profiles, cost model and simulated clock.
- :mod:`repro.layouts`    -- record schemas and physical layouts (text row, binary row, PAX).
- :mod:`repro.hdfs`       -- a functional HDFS substrate (namenode, datanodes, upload pipeline).
- :mod:`repro.mapreduce`  -- a functional Hadoop MapReduce substrate (splits, scheduling, tasks).
- :mod:`repro.engine`     -- the unified query-execution engine: access-path planner
  (``QueryPlan`` with ``explain()``) and vectorized PAX executor shared by all systems.
- :mod:`repro.hail`       -- the paper's contribution: per-replica clustered indexing (HAIL).
- :mod:`repro.baselines`  -- stock Hadoop and Hadoop++ (trojan index) baselines.
- :mod:`repro.datagen`    -- UserVisits and Synthetic dataset generators.
- :mod:`repro.workloads`  -- Bob's query workload and the Synthetic query workload.
- :mod:`repro.design`     -- per-replica index selection (physical design advisor).
- :mod:`repro.experiments` -- harnesses regenerating every table and figure of the paper.

Quickstart
----------

>>> from repro.hail import HailSystem
>>> from repro.cluster import Cluster, HardwareProfile
>>> from repro.datagen import UserVisitsGenerator
>>> from repro.workloads import bob_queries
>>> cluster = Cluster.homogeneous(4, HardwareProfile.physical())
>>> hail = HailSystem(cluster, index_attributes=["visitDate", "sourceIP", "adRevenue"])
>>> rows = UserVisitsGenerator(seed=7).generate(2000)
>>> report = hail.upload("/logs/uservisits", rows)
>>> result = hail.run_query(bob_queries()[0], "/logs/uservisits")
>>> len(result.records) > 0
True
"""

from repro._version import __version__

__all__ = ["__version__"]
