"""Reproduction of "Only Aggressive Elephants are Fast Elephants" (HAIL, VLDB 2012).

The package is organised as a stack of subsystems, mirroring the paper:

- :mod:`repro.cluster`    -- cluster hardware profiles, cost model and simulated clock.
- :mod:`repro.layouts`    -- record schemas and physical layouts (text row, binary row, PAX).
- :mod:`repro.hdfs`       -- a functional HDFS substrate (namenode, datanodes, upload pipeline).
- :mod:`repro.mapreduce`  -- a functional Hadoop MapReduce substrate (splits, scheduling, tasks).
- :mod:`repro.engine`     -- the unified query-execution engine: access-path planner
  (``QueryPlan`` with ``explain()``) and vectorized PAX executor shared by all systems.
- :mod:`repro.hail`       -- the paper's contribution: per-replica clustered indexing (HAIL).
- :mod:`repro.baselines`  -- stock Hadoop and Hadoop++ (trojan index) baselines.
- :mod:`repro.datagen`    -- UserVisits and Synthetic dataset generators.
- :mod:`repro.workloads`  -- Bob's query workload and the Synthetic query workload.
- :mod:`repro.design`     -- per-replica index selection (physical design advisor).
- :mod:`repro.api`        -- the declarative client layer: :class:`Session`, lazy
  :class:`Dataset`, the typed expression DSL (``col``), and batched workload execution.
- :mod:`repro.experiments` -- harnesses regenerating every table and figure of the paper.

The names re-exported here are the supported top-level surface; ``tools/lint_api.py`` pins
them (and ``repro.api``'s) against a checked-in manifest so accidental breaking changes fail
CI.

Quickstart
----------

>>> from datetime import date
>>> from repro import Session, col
>>> from repro.datagen import UserVisitsGenerator
>>> session = Session.deploy(nodes=4, index_attributes=["visitDate", "sourceIP", "adRevenue"])
>>> generator = UserVisitsGenerator(seed=7)
>>> visits = session.upload("/logs/uservisits", generator.generate(2000), generator.schema)
>>> result = (
...     visits.where(col("visitDate").between(date(1999, 1, 1), date(2000, 1, 1)))
...     .select("sourceIP")
...     .collect()
... )
>>> len(result.records) > 0
True
"""

from repro._version import __version__
from repro.api import (
    BatchExecutionError,
    BatchResult,
    Dataset,
    LogicalQuery,
    QueryHandle,
    Session,
    SessionStats,
    UnsupportedExpressionError,
    col,
    run_multi_tenant_batch,
)
from repro.workloads.query import Query

__all__ = [
    "__version__",
    "BatchExecutionError",
    "BatchResult",
    "Dataset",
    "LogicalQuery",
    "Query",
    "QueryHandle",
    "Session",
    "SessionStats",
    "UnsupportedExpressionError",
    "col",
    "run_multi_tenant_batch",
]
