"""The HDFS client: uploads whole files block by block through an upload pipeline.

The client is generic over the pipeline implementation: stock Hadoop uses
:class:`~repro.hdfs.pipeline.StandardUploadPipeline`; HAIL plugs in its own pipeline
(:class:`repro.hail.upload.HailUploadPipeline`) which produces differently sorted and indexed
replicas while reusing the same namenode/datanode interaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, Sequence

from repro.cluster.costmodel import CostModel
from repro.cluster.ledger import TransferLedger
from repro.hdfs.filesystem import DataFile, Hdfs


class UploadPipeline(Protocol):
    """Anything that can upload one block of rows and register its replicas."""

    def upload_block(
        self,
        path: str,
        records: Sequence[tuple],
        schema,
        client_node: int,
        ledger: TransferLedger,
        raw_lines: Optional[Sequence[str]] = None,
        replication: Optional[int] = None,
    ):  # pragma: no cover - protocol definition
        ...


@dataclass
class UploadReport:
    """Summary of one file upload."""

    path: str
    num_blocks: int
    num_records: int
    source_text_bytes: int
    stored_bytes: int
    replication: int
    duration_s: Optional[float] = None
    block_results: list = field(default_factory=list)

    @property
    def blowup(self) -> float:
        """Stored bytes divided by source bytes (disk-space cost of replication + indexing)."""
        if self.source_text_bytes == 0:
            return 0.0
        return self.stored_bytes / self.source_text_bytes


class HdfsClient:
    """Uploads a :class:`~repro.hdfs.filesystem.DataFile` from one client node."""

    def __init__(
        self,
        hdfs: Hdfs,
        cost: CostModel,
        pipeline: UploadPipeline,
        client_node: int = 0,
    ) -> None:
        self.hdfs = hdfs
        self.cost = cost
        self.pipeline = pipeline
        self.client_node = client_node

    def upload(
        self,
        datafile: DataFile,
        rows_per_block: int,
        ledger: Optional[TransferLedger] = None,
        replication: Optional[int] = None,
        create_file: bool = True,
    ) -> UploadReport:
        """Upload ``datafile``, cutting it into blocks of ``rows_per_block`` rows.

        When ``ledger`` is ``None`` a private ledger is used and the report carries the upload
        duration; when an external ledger is passed (multi-client uploads, where every node
        uploads its share concurrently) the caller computes the cluster-wide makespan itself and
        ``duration_s`` stays ``None``.
        """
        own_ledger = ledger is None
        if ledger is None:
            ledger = TransferLedger(self.hdfs.cluster, self.cost)
        if create_file and not self.hdfs.namenode.file_exists(datafile.path):
            self.hdfs.namenode.create_file(datafile.path)

        block_results = []
        stored_bytes_before = self.hdfs.total_stored_bytes()
        source_bytes = 0
        if datafile.raw_lines is not None:
            # Raw upload: the source is unparsed text; pipelines that parse at upload time (HAIL)
            # separate the rows that fail schema validation as bad records.
            for block_lines in datafile.partition_lines(rows_per_block):
                result = self.pipeline.upload_block(
                    path=datafile.path,
                    records=[],
                    schema=datafile.schema,
                    client_node=self.client_node,
                    ledger=ledger,
                    raw_lines=block_lines,
                    replication=replication,
                )
                block_results.append(result)
                source_bytes += sum(len(line.encode("utf-8")) + 1 for line in block_lines)
        else:
            for block_records in datafile.partition_records(rows_per_block):
                result = self.pipeline.upload_block(
                    path=datafile.path,
                    records=block_records,
                    schema=datafile.schema,
                    client_node=self.client_node,
                    ledger=ledger,
                    replication=replication,
                )
                block_results.append(result)
                source_bytes += sum(
                    datafile.schema.text_size(record) for record in block_records
                )

        stored_bytes = self.hdfs.total_stored_bytes() - stored_bytes_before
        effective_replication = (
            replication if replication is not None else self.hdfs.namenode.replication
        )
        report = UploadReport(
            path=datafile.path,
            num_blocks=len(block_results),
            num_records=datafile.num_records,
            source_text_bytes=source_bytes,
            stored_bytes=stored_bytes,
            replication=effective_replication,
            block_results=block_results,
        )
        if own_ledger:
            report.duration_s = ledger.makespan()
        return report
