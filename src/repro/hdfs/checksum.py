"""Chunk checksums.

HDFS splits each block into 512-byte chunks and keeps a CRC per chunk in a separate checksum
file next to each replica.  The checksums are re-used whenever the data travels over the
network; the last datanode of the upload pipeline verifies them on behalf of the whole chain
(Section 3.2).  HAIL must *recompute* them per replica because every replica is re-sorted.
"""

from __future__ import annotations

import zlib
from typing import Sequence

DEFAULT_CHUNK_SIZE = 512


def chunk_checksums(payload: bytes, chunk_size: int = DEFAULT_CHUNK_SIZE) -> list[int]:
    """CRC32 of every ``chunk_size``-byte chunk of ``payload`` (last chunk may be shorter)."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [
        zlib.crc32(payload[offset : offset + chunk_size])
        for offset in range(0, len(payload), chunk_size)
    ]


def verify_chunk_checksums(
    payload: bytes, checksums: Sequence[int], chunk_size: int = DEFAULT_CHUNK_SIZE
) -> bool:
    """True when ``payload`` matches the per-chunk ``checksums``."""
    return list(checksums) == chunk_checksums(payload, chunk_size)


def checksum_file_size(payload_size: int, chunk_size: int = DEFAULT_CHUNK_SIZE) -> int:
    """Size in bytes of the checksum file for a replica of ``payload_size`` bytes (4 B per CRC)."""
    if payload_size <= 0:
        return 0
    num_chunks = (payload_size + chunk_size - 1) // chunk_size
    return 4 * num_chunks
