"""The HDFS namenode.

The namenode keeps the file namespace and ``Dir_block``: the mapping from block id to the set of
datanodes storing a replica of it (Section 3.3).  Stock HDFS treats all replicas of a block as
byte-equivalent; HAIL adds a second directory ``Dir_rep`` mapping ``(block id, datanode)`` to a
``HAILBlockReplicaInfo`` describing the sort order and clustered index of that particular
replica, which is what allows the MapReduce scheduler to route map tasks to the replica with the
matching index.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.cluster.topology import Cluster
from repro.hdfs.block import BlockLocation, LogicalBlock
from repro.hdfs.errors import (
    BlockNotFoundError,
    FileAlreadyExistsError,
    FileNotFoundInHdfsError,
)


class NameNode:
    """Central metadata service: namespace, block directory, and HAIL's replica directory."""

    def __init__(self, cluster: Cluster, replication: int = 3) -> None:
        if replication < 1:
            raise ValueError("replication factor must be at least 1")
        self._cluster = cluster
        self.replication = replication
        self._next_block_id = 0
        #: path -> ordered list of block ids
        self._files: Dict[str, List[int]] = {}
        #: Dir_block: block id -> ordered list of datanode ids holding a replica
        self._dir_block: Dict[int, List[int]] = {}
        #: block id -> logical block metadata (path, record counts)
        self._blocks: Dict[int, LogicalBlock] = {}
        #: Dir_rep: (block id, datanode id) -> HAILBlockReplicaInfo (opaque to stock HDFS)
        self._dir_rep: Dict[tuple[int, int], Any] = {}
        #: Index-usage statistics: (block id, datanode id) -> [use count, last-used tick].
        #: The physical planner touches an entry whenever it plans an index scan over that
        #: replica; the adaptive-index lifecycle manager orders eviction candidates by these
        #: statistics (least-recently-used first).
        self._index_usage: Dict[tuple[int, int], list[int]] = {}
        #: Logical clock driving the last-used ticks (one tick per planned index use).
        self._usage_tick = 0
        #: Eviction tombstones: (block id, indexed attribute) -> datanode the adaptive replica
        #: was evicted from.  Lets the planner report "evicted (disk pressure on dnN)" instead
        #: of "no replica indexed"; cleared as soon as a replica indexed on that attribute is
        #: registered again (the adaptive rebuild).
        self._evictions: Dict[tuple[int, str], int] = {}

    # ------------------------------------------------------------------ namespace
    def create_file(self, path: str) -> None:
        """Create an empty file entry; HDFS files are write-once."""
        if path in self._files:
            raise FileAlreadyExistsError(f"path already exists in HDFS: {path!r}")
        self._files[path] = []

    def file_exists(self, path: str) -> bool:
        """True if ``path`` is a file in the namespace."""
        return path in self._files

    def list_files(self) -> list[str]:
        """All file paths, sorted."""
        return sorted(self._files)

    def delete_file(self, path: str) -> list[int]:
        """Remove a file and all its block metadata; returns the freed block ids."""
        block_ids = self._files.pop(path, None)
        if block_ids is None:
            raise FileNotFoundInHdfsError(f"no such file: {path!r}")
        for block_id in block_ids:
            datanodes = self._dir_block.pop(block_id, [])
            self._blocks.pop(block_id, None)
            for datanode_id in datanodes:
                self._dir_rep.pop((block_id, datanode_id), None)
                self._index_usage.pop((block_id, datanode_id), None)
            for key in [key for key in self._evictions if key[0] == block_id]:
                self._evictions.pop(key, None)
        return block_ids

    def file_blocks(self, path: str) -> list[int]:
        """Ordered block ids of a file."""
        try:
            return list(self._files[path])
        except KeyError:
            raise FileNotFoundInHdfsError(f"no such file: {path!r}") from None

    # ------------------------------------------------------------------ block allocation
    def allocate_block(
        self,
        path: str,
        logical_block: LogicalBlock,
        client_node: Optional[int] = None,
        replication: Optional[int] = None,
    ) -> tuple[int, list[int]]:
        """Allocate a new block for ``path`` and choose the datanodes of its upload pipeline.

        Returns ``(block_id, pipeline)`` where ``pipeline`` lists the datanodes in upload order
        (DN1 is the first hop of the chain).
        """
        if path not in self._files:
            raise FileNotFoundInHdfsError(f"no such file: {path!r} (create it before writing)")
        replication = replication if replication is not None else self.replication
        block_id = self._next_block_id
        self._next_block_id += 1
        logical_block.block_id = block_id
        logical_block.path = path
        pipeline = self._cluster.choose_replica_nodes(replication, client_node=client_node)
        self._files[path].append(block_id)
        self._blocks[block_id] = logical_block
        self._dir_block[block_id] = []
        return block_id, pipeline

    def register_replica(
        self, block_id: int, datanode_id: int, replica_info: Optional[Any] = None
    ) -> None:
        """Record that ``datanode_id`` stores a replica of ``block_id``.

        ``replica_info`` is the HAIL extension: a ``HAILBlockReplicaInfo`` describing the sort
        order, index type and sizes of this particular replica.  Stock uploads pass ``None``.
        """
        if block_id not in self._dir_block:
            raise BlockNotFoundError(f"unknown block id {block_id}")
        datanodes = self._dir_block[block_id]
        if datanode_id not in datanodes:
            datanodes.append(datanode_id)
        if replica_info is not None:
            self._dir_rep[(block_id, datanode_id)] = replica_info
            indexed_attribute = getattr(replica_info, "indexed_attribute", None)
            if indexed_attribute is not None:
                # A fresh index on this attribute supersedes any eviction tombstone: the
                # planner should stop reporting the block's index as evicted.
                self._evictions.pop((block_id, indexed_attribute), None)

    def unregister_replica(self, block_id: int, datanode_id: int) -> None:
        """Remove one replica from ``Dir_block``/``Dir_rep`` (lost-replica reconciliation).

        Used when a replica is known to be superseded — e.g. an adaptive index rebuilt on
        another node after its original host died; real HDFS drops such stale replicas when
        the revived datanode's block report arrives.
        """
        datanodes = self._dir_block.get(block_id)
        if datanodes is not None and datanode_id in datanodes:
            datanodes.remove(datanode_id)
        self._dir_rep.pop((block_id, datanode_id), None)
        self._index_usage.pop((block_id, datanode_id), None)

    # ------------------------------------------------------------------ lookups
    def logical_block(self, block_id: int) -> LogicalBlock:
        """The logical block metadata for ``block_id``."""
        try:
            return self._blocks[block_id]
        except KeyError:
            raise BlockNotFoundError(f"unknown block id {block_id}") from None

    def block_datanodes(self, block_id: int, alive_only: bool = True) -> list[int]:
        """Datanodes of ``Dir_block[block_id]``, optionally filtered to alive nodes."""
        try:
            datanodes = self._dir_block[block_id]
        except KeyError:
            raise BlockNotFoundError(f"unknown block id {block_id}") from None
        if not alive_only:
            return list(datanodes)
        return [nid for nid in datanodes if self._cluster.node(nid).is_alive]

    def block_locations(self, path: str, alive_only: bool = True) -> list[BlockLocation]:
        """``BlockLocation[]`` for every block of ``path`` (what the JobClient fetches)."""
        locations = []
        for block_id in self.file_blocks(path):
            block = self._blocks[block_id]
            hosts = tuple(self.block_datanodes(block_id, alive_only=alive_only))
            locations.append(
                BlockLocation(
                    block_id=block_id,
                    path=path,
                    hosts=hosts,
                    length_bytes=block.text_size_bytes,
                )
            )
        return locations

    # ------------------------------------------------------------------ HAIL extensions (Dir_rep)
    def register_replica_info(self, block_id: int, datanode_id: int, replica_info: Any) -> None:
        """Store/replace the ``HAILBlockReplicaInfo`` of one replica."""
        if block_id not in self._dir_block:
            raise BlockNotFoundError(f"unknown block id {block_id}")
        self._dir_rep[(block_id, datanode_id)] = replica_info

    def replica_info(self, block_id: int, datanode_id: int) -> Optional[Any]:
        """The ``HAILBlockReplicaInfo`` of one replica, or ``None`` for unindexed replicas."""
        return self._dir_rep.get((block_id, datanode_id))

    def replica_infos(self, block_id: int, alive_only: bool = True) -> dict[int, Any]:
        """All known replica infos of a block, keyed by datanode id."""
        infos = {}
        for datanode_id in self.block_datanodes(block_id, alive_only=alive_only):
            info = self._dir_rep.get((block_id, datanode_id))
            if info is not None:
                infos[datanode_id] = info
        return infos

    def hosts_with_index(
        self, block_id: int, attribute: str, alive_only: bool = True
    ) -> list[int]:
        """Datanodes whose replica of ``block_id`` has a clustered index on ``attribute``.

        This is the namenode side of the ``getHostsWithIndex`` call HAIL adds to
        ``BlockLocation`` (Section 4.3).
        """
        hosts = []
        for datanode_id in self.block_datanodes(block_id, alive_only=alive_only):
            info = self._dir_rep.get((block_id, datanode_id))
            if info is not None and getattr(info, "indexed_attribute", None) == attribute:
                hosts.append(datanode_id)
        return hosts

    # ------------------------------------------------------------------ index usage & evictions
    def touch_index_usage(self, block_id: int, datanode_id: int) -> None:
        """Record that the planner chose this replica's index for a block plan.

        Called by :class:`~repro.engine.planner.PhysicalPlanner` whenever a plan answers a
        block via the replica's clustered index.  The per-replica use count and last-used tick
        are what the adaptive-index lifecycle manager orders eviction candidates by (LRU).
        """
        self._usage_tick += 1
        entry = self._index_usage.setdefault((block_id, datanode_id), [0, 0])
        entry[0] += 1
        entry[1] = self._usage_tick

    def index_usage(self, block_id: int, datanode_id: int) -> tuple[int, int]:
        """``(use count, last-used tick)`` of one replica's index; ``(0, 0)`` if never used."""
        entry = self._index_usage.get((block_id, datanode_id))
        if entry is None:
            return (0, 0)
        return (entry[0], entry[1])

    def transfer_index_usage(self, block_id: int, from_datanode: int, to_datanode: int) -> None:
        """Move one replica's usage statistics to another datanode (placement migration).

        The placement balancer migrates adaptive replicas between nodes; carrying the LRU
        history along keeps a *hot* migrated replica from looking brand-new cold on its new
        host and being the next thing disk-pressure eviction reclaims (migrate→evict thrash).
        """
        entry = self._index_usage.pop((block_id, from_datanode), None)
        if entry is not None:
            self._index_usage[(block_id, to_datanode)] = entry

    def reset_index_usage(self, block_id: int, datanode_id: int) -> None:
        """Forget one replica's usage statistics (its index was reclaimed).

        ``unregister_replica`` clears the statistics when a replica is deleted outright; the
        downgrade path of eviction keeps the replica registered (as a plain copy) and calls
        this instead, so a later rebuild on the same node starts its LRU life from scratch.
        """
        self._index_usage.pop((block_id, datanode_id), None)

    def adaptive_bytes_by_node(self) -> Dict[int, int]:
        """On-disk bytes of the *adaptive* replicas per datanode, in one ``Dir_rep`` pass.

        This is the per-node metric the disk-pressure eviction policy bounds: the footprint of
        the opportunistic (adaptively built) replicas, measured from ``Dir_rep`` — upload-time
        replicas are primary data and never count against the adaptive budget.  Datanodes
        without adaptive replicas are absent from the mapping.
        """
        totals: Dict[int, int] = {}
        for (_block_id, owner), info in self._dir_rep.items():
            if getattr(info, "is_adaptive", False):
                totals[owner] = totals.get(owner, 0) + info.size_on_disk_bytes
        return totals

    def adaptive_bytes_on(self, datanode_id: int) -> int:
        """On-disk bytes of the adaptive replicas on one datanode (see :meth:`adaptive_bytes_by_node`)."""
        return self.adaptive_bytes_by_node().get(datanode_id, 0)

    def record_index_eviction(self, block_id: int, attribute: str, datanode_id: int) -> None:
        """Remember that the adaptive index of ``(block, attribute)`` was evicted from a node.

        The tombstone only feeds the planner's fallback-reason wording ("evicted (disk
        pressure on dnN)" rather than "no replica indexed"); it is cleared when a replica
        indexed on ``attribute`` is registered again.
        """
        self._evictions[(block_id, attribute)] = datanode_id

    def index_eviction(self, block_id: int, attribute: str) -> Optional[int]:
        """Datanode an adaptive index of ``(block, attribute)`` was evicted from, or ``None``."""
        return self._evictions.get((block_id, attribute))

    # ------------------------------------------------------------------ persistence support
    # Accessors the persistence layer (src/repro/persist/) uses to capture a block's full
    # directory state and to rebuild the namenode from a journal.  Restore goes through
    # these instead of allocate_block/touch_index_usage because the journaled values — block
    # ids, usage ticks, the allocation counter — must come back exactly, not be re-derived.

    def block_eviction_tombstones(self, block_id: int) -> Dict[str, int]:
        """Eviction tombstones of one block, keyed by the evicted indexed attribute."""
        return {
            attribute: datanode_id
            for (bid, attribute), datanode_id in self._evictions.items()
            if bid == block_id
        }

    @property
    def next_block_id(self) -> int:
        """The allocation counter: the id the next :meth:`allocate_block` will hand out."""
        return self._next_block_id

    def set_next_block_id(self, value: int) -> None:
        """Restore the allocation counter (monotone: never moves backwards)."""
        self._next_block_id = max(self._next_block_id, value)

    @property
    def usage_tick(self) -> int:
        """The logical clock behind the index-usage LRU statistics."""
        return self._usage_tick

    def set_usage_tick(self, tick: int) -> None:
        """Restore the usage clock (monotone: never moves backwards)."""
        self._usage_tick = max(self._usage_tick, tick)

    def adopt_block(self, path: str, logical_block: LogicalBlock, block_id: int) -> None:
        """Insert a journaled block under its *original* id (restore-time allocation).

        The normal :meth:`allocate_block` hands out fresh ids and an upload pipeline;
        restore must instead re-seat each block exactly where the journal says it lived, in
        journal order, and leave the allocation counter strictly past every adopted id so
        post-restore uploads can never collide with recovered blocks.
        """
        if path not in self._files:
            raise FileNotFoundInHdfsError(f"no such file: {path!r} (create it before adopting)")
        if block_id in self._blocks:
            raise BlockNotFoundError(f"block id {block_id} already present; cannot adopt")
        logical_block.block_id = block_id
        logical_block.path = path
        self._files[path].append(block_id)
        self._blocks[block_id] = logical_block
        self._dir_block[block_id] = []
        self.set_next_block_id(block_id + 1)

    def set_index_usage(
        self, block_id: int, datanode_id: int, use_count: int, last_tick: int
    ) -> None:
        """Restore one replica's journaled LRU statistics verbatim."""
        self._index_usage[(block_id, datanode_id)] = [use_count, last_tick]
        self.set_usage_tick(last_tick)

    # ------------------------------------------------------------------ reporting
    def describe(self) -> dict:
        """Namespace and directory sizes (for reports and tests)."""
        return {
            "files": len(self._files),
            "blocks": len(self._blocks),
            "replica_entries": sum(len(v) for v in self._dir_block.values()),
            "dir_rep_entries": len(self._dir_rep),
            "replication": self.replication,
        }
