"""Exception types of the HDFS substrate."""

from __future__ import annotations


class HdfsError(Exception):
    """Base class for all HDFS substrate errors."""


class FileNotFoundInHdfsError(HdfsError):
    """A path does not exist in the namespace."""


class FileAlreadyExistsError(HdfsError):
    """A path already exists (HDFS files are write-once)."""


class BlockNotFoundError(HdfsError):
    """A block id is not known to the namenode."""


class ReplicaNotFoundError(HdfsError):
    """A datanode does not hold a replica of the requested block."""


class ChecksumError(HdfsError):
    """Chunk checksum verification failed in the upload pipeline or on read."""


class UploadFailedError(HdfsError):
    """The upload pipeline failed (e.g. ACKs arrived out of order or a datanode died)."""
