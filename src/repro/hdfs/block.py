"""Logical HDFS blocks, physical replicas and block payloads.

An HDFS *block* is a logical horizontal partition of a file; each block is physically stored
``replication`` times, and each physical copy is a *replica*.  In stock HDFS all replicas are
byte-identical; HAIL's whole point is that they need not be — every replica may use a different
sort order, a different clustered index, and therefore a different size and different checksums,
while still representing the same logical block (which is why failover is unaffected).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.layouts.schema import Schema


class BlockPayload(abc.ABC):
    """Physical content of one replica.

    Concrete payloads: :class:`TextBlockPayload` (stock Hadoop), ``HailBlock``
    (:mod:`repro.hail.hail_block`) and ``TrojanBlockPayload``
    (:mod:`repro.baselines.hadoopplusplus`).
    """

    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Physical size of the replica's data file in bytes (functional, unscaled)."""

    @abc.abstractmethod
    def describe(self) -> dict:
        """Human-readable summary used by reports and the namenode web-UI equivalent."""

    @property
    def layout(self) -> str:
        """Short layout tag, e.g. ``"text-row"`` or ``"pax+index(visitDate)"``."""
        return self.describe().get("layout", self.__class__.__name__)


class TextBlockPayload(BlockPayload):
    """Stock HDFS replica content: the uploaded text lines, byte-identical on every replica."""

    def __init__(self, lines: Sequence[str], schema: Optional[Schema] = None) -> None:
        self.lines: list[str] = list(lines)
        self.schema = schema
        self._size = sum(len(line.encode("utf-8")) + 1 for line in self.lines)

    def size_bytes(self) -> int:
        return self._size

    def to_bytes(self) -> bytes:
        """The exact byte content of the replica's data file."""
        if not self.lines:
            return b""
        return ("\n".join(self.lines) + "\n").encode("utf-8")

    def describe(self) -> dict:
        return {"layout": "text-row", "records": len(self.lines), "bytes": self._size}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TextBlockPayload(lines={len(self.lines)}, bytes={self._size})"


@dataclass
class LogicalBlock:
    """A logical HDFS block: the records of one horizontal partition of a file.

    The HAIL client never splits a row between two blocks (it cuts blocks at row boundaries,
    Section 3.1), so a logical block is simply a list of typed records plus the rows that failed
    schema validation ("bad records").
    """

    block_id: int
    path: str
    records: list[tuple]
    schema: Schema
    bad_lines: list[str] = field(default_factory=list)
    text_size_bytes: int = 0

    @property
    def num_records(self) -> int:
        """Number of well-formed records in the block."""
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogicalBlock(id={self.block_id}, path={self.path!r}, records={len(self.records)})"


@dataclass
class Replica:
    """One physical copy of a logical block stored on one datanode."""

    block_id: int
    datanode_id: int
    payload: BlockPayload
    checksums: tuple[int, ...] = ()
    sort_attribute: Optional[str] = None
    indexed_attribute: Optional[str] = None

    @property
    def size_bytes(self) -> int:
        """Physical size of the replica's data file."""
        return self.payload.size_bytes()

    @property
    def has_index(self) -> bool:
        """True when this replica carries a clustered index."""
        return self.indexed_attribute is not None

    def describe(self) -> dict:
        """Summary including layout and index information."""
        info = dict(self.payload.describe())
        info.update(
            {
                "block_id": self.block_id,
                "datanode": self.datanode_id,
                "sort_attribute": self.sort_attribute,
                "indexed_attribute": self.indexed_attribute,
            }
        )
        return info


@dataclass(frozen=True)
class BlockLocation:
    """Where the replicas of one block live (what ``BlockLocation.getHosts`` returns).

    ``hosts`` preserves the namenode's ordering.  HAIL extends lookups over this structure with
    ``getHostsWithIndex`` — in this reproduction that lives on the namenode
    (:meth:`repro.hdfs.namenode.NameNode.hosts_with_index`) and on the HAIL scheduler.
    """

    block_id: int
    path: str
    hosts: tuple[int, ...]
    length_bytes: int

    def get_hosts(self) -> tuple[int, ...]:
        """Datanodes holding a replica of this block."""
        return self.hosts
