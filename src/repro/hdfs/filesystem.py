"""The HDFS facade: one namenode plus one datanode per cluster node.

`Hdfs` wires the namenode and datanodes to a :class:`~repro.cluster.topology.Cluster` and gives
uploaders and record readers a single object to talk to.  It is deliberately thin — the
interesting behaviour lives in the upload pipelines (:mod:`repro.hdfs.pipeline`,
:mod:`repro.hail.upload`) and in the MapReduce substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

from repro.cluster.costmodel import CostModel
from repro.cluster.topology import Cluster
from repro.hdfs.block import LogicalBlock, Replica
from repro.hdfs.datanode import DataNode
from repro.hdfs.errors import ReplicaNotFoundError
from repro.hdfs.namenode import NameNode
from repro.layouts.schema import Schema


@dataclass
class DataFile:
    """A client-side file to be uploaded: typed records plus their schema.

    ``raw_lines`` optionally carries unparsed text rows (including rows that will turn out to be
    bad records); when absent, the text representation is derived from ``records``.
    """

    path: str
    schema: Schema
    records: list[tuple]
    raw_lines: Optional[list[str]] = None

    @property
    def num_records(self) -> int:
        """Number of typed records in the file."""
        return len(self.records)

    def text_lines(self) -> list[str]:
        """The text rows of the file (what a stock HDFS upload would store)."""
        if self.raw_lines is not None:
            return list(self.raw_lines)
        return [self.schema.format_record(record) for record in self.records]

    def partition_records(self, rows_per_block: int) -> list[list[tuple]]:
        """Split the typed records into block-sized groups, never splitting a row."""
        if rows_per_block <= 0:
            raise ValueError("rows_per_block must be positive")
        return [
            self.records[i : i + rows_per_block]
            for i in range(0, len(self.records), rows_per_block)
        ] or [[]]

    def partition_lines(self, rows_per_block: int) -> list[list[str]]:
        """Split the raw text lines into block-sized groups (for raw uploads with bad records)."""
        if rows_per_block <= 0:
            raise ValueError("rows_per_block must be positive")
        if self.raw_lines is None:
            raise ValueError("this DataFile carries no raw lines")
        return [
            self.raw_lines[i : i + rows_per_block]
            for i in range(0, len(self.raw_lines), rows_per_block)
        ] or [[]]


class Hdfs:
    """A simulated HDFS deployment: cluster + namenode + datanodes."""

    def __init__(self, cluster: Cluster, cost: CostModel, replication: Optional[int] = None) -> None:
        self.cluster = cluster
        self.cost = cost
        replication = replication if replication is not None else cost.params.replication
        self.namenode = NameNode(cluster, replication=replication)
        self.datanodes: Dict[int, DataNode] = {
            node.node_id: DataNode(node) for node in cluster.nodes
        }
        #: Optional persistence backend (see :mod:`repro.persist`); ``None`` keeps every
        #: journal write out of the path.  Attached by the owning system when its config
        #: enables persistence — the mutation-point hooks all read it via this slot.
        self.persist = None

    # ------------------------------------------------------------------ datanode access
    def datanode(self, node_id: int) -> DataNode:
        """The datanode running on ``node_id``."""
        return self.datanodes[node_id]

    def alive_datanodes(self) -> list[DataNode]:
        """All datanodes whose host node is alive."""
        return [dn for dn in self.datanodes.values() if dn.is_alive]

    # ------------------------------------------------------------------ replica access
    def read_replica(self, block_id: int, datanode_id: int) -> Replica:
        """Fetch the replica of ``block_id`` stored on ``datanode_id``."""
        return self.datanode(datanode_id).replica(block_id)

    def any_replica(self, block_id: int, prefer_node: Optional[int] = None) -> Replica:
        """Fetch some alive replica of ``block_id``, preferring ``prefer_node`` when it has one."""
        hosts = self.namenode.block_datanodes(block_id, alive_only=True)
        if not hosts:
            raise ReplicaNotFoundError(f"no alive replica of block {block_id}")
        if prefer_node is not None and prefer_node in hosts:
            return self.read_replica(block_id, prefer_node)
        return self.read_replica(block_id, hosts[0])

    # ------------------------------------------------------------------ file level helpers
    def file_blocks(self, path: str) -> list[LogicalBlock]:
        """The logical blocks of a file, in order."""
        return [self.namenode.logical_block(bid) for bid in self.namenode.file_blocks(path)]

    def file_records(self, path: str) -> list[tuple]:
        """All typed records of a file, in block order (ground truth for tests)."""
        records: list[tuple] = []
        for block in self.file_blocks(path):
            records.extend(block.records)
        return records

    def total_stored_bytes(self) -> int:
        """Total replica bytes stored across all datanodes (the paper's disk-space argument)."""
        return sum(dn.used_bytes for dn in self.datanodes.values())

    def describe(self) -> dict:
        """Summary of the deployment for reports."""
        info = self.namenode.describe()
        info["stored_bytes"] = self.total_stored_bytes()
        info["datanodes"] = len(self.datanodes)
        return info
