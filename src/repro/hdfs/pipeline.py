"""The stock HDFS upload pipeline (Section 3.2 of the paper, "In HDFS, ...").

For every block the client obtains a pipeline of datanodes from the namenode, cuts the block
into packets (chunks plus checksums) and streams them to DN1, which forwards to DN2, which
forwards to DN3.  Every datanode flushes chunk data and checksums to two local files as packets
arrive; only the last datanode verifies checksums, and ACKs travel back along the chain.

Costs are charged to a :class:`~repro.cluster.ledger.TransferLedger`:

- the client reads the source data from its local disk and pushes it onto the network,
- every datanode in the chain receives the bytes, writes data + checksum files, and forwards,
- checksum computation (client) and verification (last datanode) are CPU work,
- a per-block fixed setup cost covers the namenode round trip and pipeline establishment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cluster.costmodel import CostModel
from repro.cluster.ledger import TransferLedger
from repro.hdfs.block import LogicalBlock, Replica, TextBlockPayload
from repro.hdfs.checksum import checksum_file_size, chunk_checksums
from repro.hdfs.chunk import num_packets
from repro.hdfs.errors import UploadFailedError
from repro.hdfs.filesystem import Hdfs


@dataclass
class BlockUploadResult:
    """Outcome of uploading one block through the pipeline."""

    block_id: int
    pipeline: tuple[int, ...]
    payload_bytes: int
    num_packets: int
    checksums_verified: bool

    @property
    def replication(self) -> int:
        """Number of replicas written."""
        return len(self.pipeline)


class StandardUploadPipeline:
    """Uploads blocks the way stock HDFS does: byte-identical text replicas."""

    def __init__(self, hdfs: Hdfs, cost: CostModel, verify_checksums: bool = True) -> None:
        self.hdfs = hdfs
        self.cost = cost
        self.verify_checksums = verify_checksums

    def upload_block(
        self,
        path: str,
        records: Sequence[tuple],
        schema,
        client_node: int,
        ledger: TransferLedger,
        raw_lines: Optional[Sequence[str]] = None,
        replication: Optional[int] = None,
    ) -> BlockUploadResult:
        """Upload one block (a group of rows) and register its replicas with the namenode."""
        records = list(records)
        bad_lines: list[str] = []
        if raw_lines is not None:
            lines = list(raw_lines)
            if not records:
                # Stock HDFS stores the text verbatim; the logical-block record list (used as
                # ground truth by tests and reports) is the best-effort parse of those lines.
                from repro.layouts.row import TextRowCodec

                records, bad_lines = TextRowCodec(schema).decode_lenient("\n".join(lines))
        else:
            lines = [schema.format_record(record) for record in records]
        payload = TextBlockPayload(lines, schema=schema)
        payload_size = payload.size_bytes()

        logical = LogicalBlock(
            block_id=-1,
            path=path,
            records=records,
            schema=schema,
            bad_lines=bad_lines,
            text_size_bytes=payload_size,
        )
        block_id, pipeline = self.hdfs.namenode.allocate_block(
            path, logical, client_node=client_node, replication=replication
        )
        if not pipeline:
            raise UploadFailedError("namenode returned an empty pipeline")

        checksums: tuple[int, ...] = ()
        verified = False
        if self.verify_checksums:
            payload_bytes = payload.to_bytes()
            checksums = tuple(chunk_checksums(payload_bytes))
            verified = True

        self._charge_costs(payload_size, client_node, pipeline, ledger)

        for datanode_id in pipeline:
            replica = Replica(
                block_id=block_id,
                datanode_id=datanode_id,
                payload=payload,
                checksums=checksums,
            )
            self.hdfs.datanode(datanode_id).store_replica(replica)
            self.hdfs.namenode.register_replica(block_id, datanode_id)

        return BlockUploadResult(
            block_id=block_id,
            pipeline=tuple(pipeline),
            payload_bytes=payload_size,
            num_packets=num_packets(payload_size),
            checksums_verified=verified,
        )

    # ------------------------------------------------------------------ cost accounting
    def _charge_costs(
        self,
        payload_size: int,
        client_node: int,
        pipeline: Sequence[int],
        ledger: TransferLedger,
    ) -> None:
        cluster = self.hdfs.cluster
        cost = self.cost
        checksum_bytes = checksum_file_size(payload_size)
        wire_size = payload_size + checksum_bytes

        # Client: read the source file from local disk, checksum it, push it onto the network.
        ledger.record_disk_read(client_node, payload_size)
        client_cpu = cost.cpu(cluster.node(client_node)).checksum(cost.scale_bytes(payload_size))
        ledger.record_cpu(client_node, client_cpu)
        ledger.record_fixed(client_node, cost.block_setup())

        previous = client_node
        for position, datanode_id in enumerate(pipeline):
            node = cluster.node(datanode_id)
            # Receive from the previous hop in the chain (free if it is the same machine).
            ledger.record_transfer(previous, datanode_id, wire_size)
            # Flush chunk data and the checksum file to local disk as packets arrive.
            ledger.record_disk_write(datanode_id, payload_size + checksum_bytes)
            if position == len(pipeline) - 1:
                # Only the last datanode of the chain verifies the checksums.
                verify_cpu = cost.cpu(node).checksum(cost.scale_bytes(payload_size))
                ledger.record_cpu(datanode_id, verify_cpu)
            previous = datanode_id

        # The ACK chain adds one round trip per pipeline stage for the final packet.
        ledger.record_fixed(client_node, cost.network.round_trip() * len(pipeline))
