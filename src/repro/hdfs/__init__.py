"""A functional HDFS substrate.

This package reimplements, at laptop scale, the parts of HDFS that HAIL modifies: the central
namenode with its block directory, datanodes storing physical replicas, the chunk/packet/
checksum machinery, and the pipelined upload path with its ACK chain (Section 3.2 of the paper
describes both the stock pipeline and the HAIL changes in detail).

The stock upload pipeline lives in :mod:`repro.hdfs.pipeline`; the HAIL upload pipeline builds
on the same namenode/datanode/packet primitives from :mod:`repro.hail.upload`.
"""

from repro.hdfs.errors import HdfsError, BlockNotFoundError, ReplicaNotFoundError, ChecksumError
from repro.hdfs.checksum import chunk_checksums, verify_chunk_checksums
from repro.hdfs.chunk import Packet, packetize, CHUNK_SIZE, PACKET_SIZE
from repro.hdfs.block import (
    BlockLocation,
    LogicalBlock,
    Replica,
    BlockPayload,
    TextBlockPayload,
)
from repro.hdfs.namenode import NameNode
from repro.hdfs.datanode import DataNode
from repro.hdfs.pipeline import StandardUploadPipeline, BlockUploadResult
from repro.hdfs.client import HdfsClient, UploadReport
from repro.hdfs.filesystem import Hdfs, DataFile

__all__ = [
    "HdfsError",
    "BlockNotFoundError",
    "ReplicaNotFoundError",
    "ChecksumError",
    "chunk_checksums",
    "verify_chunk_checksums",
    "Packet",
    "packetize",
    "CHUNK_SIZE",
    "PACKET_SIZE",
    "BlockLocation",
    "LogicalBlock",
    "Replica",
    "BlockPayload",
    "TextBlockPayload",
    "NameNode",
    "DataNode",
    "StandardUploadPipeline",
    "BlockUploadResult",
    "HdfsClient",
    "UploadReport",
    "Hdfs",
    "DataFile",
]
