"""Chunks and packets of the HDFS wire protocol.

While a block travels through the upload pipeline it is cut into *chunks* of 512 bytes; chunks
plus their checksums are grouped into *packets* of up to 64 KB, and the client streams packets
so that round-trip latencies are hidden (Section 3.2).  The functional simulation materialises
packets for small blocks (tests and checksum verification); the cost model only needs packet
counts and byte volumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.hdfs.checksum import chunk_checksums

CHUNK_SIZE = 512
PACKET_SIZE = 64 * 1024
#: Bytes of chunk data per packet (the rest of the 64 KB is checksums and packet metadata).
_CHUNKS_PER_PACKET = PACKET_SIZE // (CHUNK_SIZE + 4)
PACKET_DATA_SIZE = _CHUNKS_PER_PACKET * CHUNK_SIZE


@dataclass(frozen=True)
class Packet:
    """One packet of the upload pipeline: a run of chunks plus one checksum per chunk."""

    sequence_number: int
    data: bytes
    checksums: tuple[int, ...]
    last_in_block: bool = False

    @property
    def num_chunks(self) -> int:
        """Number of chunks carried by this packet."""
        return len(self.checksums)

    @property
    def wire_size(self) -> int:
        """Bytes on the wire: chunk data plus 4 bytes of CRC per chunk plus a small header."""
        return len(self.data) + 4 * len(self.checksums) + 25


def packetize(payload: bytes, chunk_size: int = CHUNK_SIZE, packet_data_size: int = PACKET_DATA_SIZE) -> list[Packet]:
    """Cut a block payload into packets, computing per-chunk checksums.

    The last packet of a block is flagged ``last_in_block``; in HAIL its ACK additionally means
    "sorted, indexed, and flushed" on every datanode of the chain.
    """
    if chunk_size <= 0 or packet_data_size <= 0:
        raise ValueError("chunk_size and packet_data_size must be positive")
    if packet_data_size % chunk_size != 0:
        raise ValueError("packet_data_size must be a multiple of chunk_size")
    packets: list[Packet] = []
    if not payload:
        return [Packet(sequence_number=0, data=b"", checksums=(), last_in_block=True)]
    for seq, offset in enumerate(range(0, len(payload), packet_data_size)):
        data = payload[offset : offset + packet_data_size]
        checksums = tuple(chunk_checksums(data, chunk_size))
        packets.append(
            Packet(
                sequence_number=seq,
                data=data,
                checksums=checksums,
                last_in_block=offset + packet_data_size >= len(payload),
            )
        )
    return packets


def reassemble(packets: Sequence[Packet]) -> bytes:
    """Reassemble a block payload from its packets (what HAIL datanodes do in memory)."""
    ordered = sorted(packets, key=lambda packet: packet.sequence_number)
    if not ordered:
        raise ValueError("cannot reassemble a block from zero packets")
    expected = list(range(len(ordered)))
    actual = [packet.sequence_number for packet in ordered]
    if actual != expected:
        raise ValueError(f"missing or duplicate packets: have sequence numbers {actual}")
    if not ordered[-1].last_in_block:
        raise ValueError("incomplete block: the final packet is missing")
    return b"".join(packet.data for packet in ordered)


def num_packets(payload_size: int, packet_data_size: int = PACKET_DATA_SIZE) -> int:
    """Number of packets needed for ``payload_size`` bytes of block data."""
    if payload_size <= 0:
        return 1
    return (payload_size + packet_data_size - 1) // packet_data_size
