"""HDFS datanodes: per-node replica storage."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.cluster.node import Node
from repro.hdfs.block import Replica
from repro.hdfs.checksum import checksum_file_size
from repro.hdfs.errors import ReplicaNotFoundError


class DataNode:
    """One datanode: stores physical replicas and their checksum files on its node's disks."""

    def __init__(self, node: Node) -> None:
        self.node = node
        self._replicas: Dict[int, Replica] = {}

    @property
    def node_id(self) -> int:
        """Id of the cluster node hosting this datanode."""
        return self.node.node_id

    @property
    def is_alive(self) -> bool:
        """Datanode availability follows its host node."""
        return self.node.is_alive

    # ------------------------------------------------------------------ storage
    def store_replica(self, replica: Replica) -> None:
        """Flush a replica's data file and checksum file to local disk."""
        if replica.datanode_id != self.node_id:
            raise ValueError(
                f"replica for datanode {replica.datanode_id} stored on datanode {self.node_id}"
            )
        self._replicas[replica.block_id] = replica
        data_bytes = replica.size_bytes
        self.node.charge_disk(data_bytes + checksum_file_size(data_bytes))

    def has_replica(self, block_id: int) -> bool:
        """True when this datanode holds a replica of ``block_id``."""
        return block_id in self._replicas

    def replica(self, block_id: int) -> Replica:
        """The replica of ``block_id`` stored here.

        Raises
        ------
        ReplicaNotFoundError
            If the datanode does not hold the block.
        """
        try:
            return self._replicas[block_id]
        except KeyError:
            raise ReplicaNotFoundError(
                f"datanode {self.node_id} holds no replica of block {block_id}"
            ) from None

    def delete_replica(self, block_id: int) -> None:
        """Drop a replica (block deletion / rebalancing)."""
        replica = self._replicas.pop(block_id, None)
        if replica is not None:
            data_bytes = replica.size_bytes
            self.node.release_disk(data_bytes + checksum_file_size(data_bytes))

    def block_ids(self) -> list[int]:
        """Ids of all blocks with a replica on this datanode."""
        return sorted(self._replicas)

    @property
    def used_bytes(self) -> int:
        """Total bytes of replica data files stored here (excluding checksum files)."""
        return sum(replica.size_bytes for replica in self._replicas.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataNode(node={self.node_id}, replicas={len(self._replicas)})"
