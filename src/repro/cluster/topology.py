"""Cluster topology: the collection of nodes plus rack layout and locality helpers."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.cluster.hardware import HardwareProfile
from repro.cluster.node import Node, NodeState


class Cluster:
    """A set of simulated nodes with rack awareness.

    The namenode and jobtracker are assumed to run on dedicated machines outside this set (the
    paper allocates extra nodes for them on EC2), so every node in the cluster is a worker that
    hosts a datanode and a TaskTracker.
    """

    def __init__(self, nodes: Sequence[Node], nodes_per_rack: int = 20, seed: int = 0) -> None:
        if not nodes:
            raise ValueError("a cluster needs at least one node")
        self._nodes: list[Node] = list(nodes)
        self._nodes_by_id = {node.node_id: node for node in self._nodes}
        if len(self._nodes_by_id) != len(self._nodes):
            raise ValueError("duplicate node ids in cluster")
        self.nodes_per_rack = nodes_per_rack
        self._rng = random.Random(seed)
        for node in self._nodes:
            node.rack = node.node_id // nodes_per_rack

    # ------------------------------------------------------------------ construction
    @classmethod
    def homogeneous(
        cls,
        num_nodes: int,
        hardware: HardwareProfile | None = None,
        nodes_per_rack: int = 20,
        seed: int = 0,
    ) -> "Cluster":
        """Build a cluster of ``num_nodes`` identical nodes (the common case in the paper)."""
        profile = hardware if hardware is not None else HardwareProfile.physical()
        nodes = [Node(node_id=i, hardware=profile) for i in range(num_nodes)]
        return cls(nodes, nodes_per_rack=nodes_per_rack, seed=seed)

    # ------------------------------------------------------------------ basic accessors
    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    @property
    def nodes(self) -> list[Node]:
        """All nodes, alive or dead."""
        return list(self._nodes)

    @property
    def alive_nodes(self) -> list[Node]:
        """Only the nodes that have not been killed."""
        return [node for node in self._nodes if node.is_alive]

    def node(self, node_id: int) -> Node:
        """Return the node with ``node_id``.

        Raises
        ------
        KeyError
            If no node with that id exists.
        """
        return self._nodes_by_id[node_id]

    def has_node(self, node_id: int) -> bool:
        """True if ``node_id`` belongs to this cluster."""
        return node_id in self._nodes_by_id

    # ------------------------------------------------------------------ locality
    def same_rack(self, node_a: int, node_b: int) -> bool:
        """True when both nodes sit in the same rack."""
        return self.node(node_a).rack == self.node(node_b).rack

    def locality(self, node_a: int, node_b: int) -> str:
        """Classify the distance between two nodes: ``node`` / ``rack`` / ``off-rack``."""
        if node_a == node_b:
            return "node"
        if self.same_rack(node_a, node_b):
            return "rack"
        return "off-rack"

    # ------------------------------------------------------------------ replica placement
    def choose_replica_nodes(
        self, num_replicas: int, client_node: int | None = None
    ) -> list[int]:
        """Pick datanodes for the replicas of one block, HDFS-style.

        The first replica goes to the client's own node when the client runs on a datanode
        (which is the case when each node uploads its local data, as in the paper's upload
        experiments); the remaining replicas go to distinct other alive nodes, preferring a
        different rack for the second replica.
        """
        alive = self.alive_nodes
        if num_replicas > len(alive):
            raise ValueError(
                f"cannot place {num_replicas} replicas on {len(alive)} alive nodes"
            )
        chosen: list[int] = []
        if client_node is not None and self.has_node(client_node) and self.node(client_node).is_alive:
            chosen.append(client_node)
        remaining = [node.node_id for node in alive if node.node_id not in chosen]
        self._rng.shuffle(remaining)
        if chosen and len(chosen) < num_replicas:
            # Prefer an off-rack node for the second replica when one exists.
            off_rack = [nid for nid in remaining if not self.same_rack(nid, chosen[0])]
            if off_rack:
                second = off_rack[0]
                chosen.append(second)
                remaining.remove(second)
        while len(chosen) < num_replicas:
            chosen.append(remaining.pop())
        return chosen[:num_replicas]

    # ------------------------------------------------------------------ failure handling
    def kill_node(self, node_id: int) -> Node:
        """Kill one node and return it."""
        node = self.node(node_id)
        node.kill()
        return node

    def revive_all(self) -> None:
        """Revive every node (reset between experiments)."""
        for node in self._nodes:
            node.revive()

    # ------------------------------------------------------------------ reporting
    def describe(self) -> dict:
        """Summarise the cluster (used by experiment reports)."""
        profiles = sorted({node.hardware.name for node in self._nodes})
        return {
            "nodes": len(self._nodes),
            "alive": len(self.alive_nodes),
            "racks": len({node.rack for node in self._nodes}),
            "hardware": profiles,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        info = self.describe()
        return f"Cluster(nodes={info['nodes']}, hardware={info['hardware']})"
