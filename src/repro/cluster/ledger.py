"""Per-node resource ledgers.

Cluster-wide operations (uploading a dataset, running a MapReduce job's I/O) are charged by
recording, for every node, how many bytes it read from disk, wrote to disk, sent and received
over the network, and how many CPU-seconds it spent.  The duration of the operation is then the
*makespan*: the slowest node bounds the whole phase, and on each node pipelined I/O, network and
CPU overlap, so the node's time is the maximum of its three resource times (plus any
non-overlappable fixed costs).

This aggregate treatment is what makes the simulation capture cluster-level disk contention:
when ten clients upload simultaneously with replication three, every datanode's disks absorb
three times the per-client volume, which is exactly why stock HDFS uploads are I/O-bound and why
HAIL can hide its sorting and indexing work behind that I/O (Section 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.cluster.costmodel import CostModel
from repro.cluster.node import Node
from repro.cluster.topology import Cluster

_MB = 1024.0 * 1024.0


@dataclass
class NodeUsage:
    """Resource consumption of one node during an operation (functional byte counts)."""

    disk_read_bytes: float = 0.0
    disk_write_bytes: float = 0.0
    net_in_bytes: float = 0.0
    net_out_bytes: float = 0.0
    cpu_seconds: float = 0.0
    fixed_seconds: float = 0.0

    def merge(self, other: "NodeUsage") -> None:
        """Accumulate another usage record into this one."""
        self.disk_read_bytes += other.disk_read_bytes
        self.disk_write_bytes += other.disk_write_bytes
        self.net_in_bytes += other.net_in_bytes
        self.net_out_bytes += other.net_out_bytes
        self.cpu_seconds += other.cpu_seconds
        self.fixed_seconds += other.fixed_seconds


class TransferLedger:
    """Accumulates per-node resource usage and converts it into a simulated duration."""

    def __init__(self, cluster: Cluster, cost: CostModel) -> None:
        self._cluster = cluster
        self._cost = cost
        self._usage: Dict[int, NodeUsage] = {}

    # ------------------------------------------------------------------ recording
    def usage(self, node_id: int) -> NodeUsage:
        """The (mutable) usage record of a node, created on first access."""
        record = self._usage.get(node_id)
        if record is None:
            record = NodeUsage()
            self._usage[node_id] = record
        return record

    def record_disk_read(self, node_id: int, num_bytes: float) -> None:
        """Charge a local disk read of ``num_bytes`` (functional bytes, scaled later)."""
        self.usage(node_id).disk_read_bytes += max(num_bytes, 0.0)

    def record_disk_write(self, node_id: int, num_bytes: float) -> None:
        """Charge a local disk write of ``num_bytes``."""
        self.usage(node_id).disk_write_bytes += max(num_bytes, 0.0)

    def record_transfer(self, src_node: int, dst_node: int, num_bytes: float) -> None:
        """Charge a network transfer; same-node transfers are free (short-circuit)."""
        if src_node == dst_node or num_bytes <= 0:
            return
        self.usage(src_node).net_out_bytes += num_bytes
        self.usage(dst_node).net_in_bytes += num_bytes

    def record_cpu(self, node_id: int, seconds: float) -> None:
        """Charge CPU-seconds (already computed by :class:`~repro.cluster.cpu.CpuModel`)."""
        self.usage(node_id).cpu_seconds += max(seconds, 0.0)

    def record_fixed(self, node_id: int, seconds: float) -> None:
        """Charge non-overlappable fixed time (per-block setup, ACK round trips, seeks)."""
        self.usage(node_id).fixed_seconds += max(seconds, 0.0)

    # ------------------------------------------------------------------ evaluation
    def node_time(self, node_id: int, apply_variance: bool = True) -> float:
        """Simulated seconds the node is busy, assuming disk/network/CPU overlap."""
        record = self._usage.get(node_id)
        if record is None:
            return 0.0
        node = self._cluster.node(node_id)
        disk_seconds = self._disk_seconds(node, record)
        net_seconds = self._network_seconds(node, record)
        io_seconds = max(disk_seconds, net_seconds)
        if apply_variance:
            io_seconds = self._cost.vary_io(node, io_seconds)
        return max(io_seconds, record.cpu_seconds) + record.fixed_seconds

    def makespan(self, apply_variance: bool = True) -> float:
        """Duration of the whole operation: the slowest node's busy time."""
        if not self._usage:
            return 0.0
        return max(self.node_time(node_id, apply_variance) for node_id in self._usage)

    def per_node_times(self, apply_variance: bool = True) -> Dict[int, float]:
        """Busy time of every node that participated."""
        return {node_id: self.node_time(node_id, apply_variance) for node_id in self._usage}

    def total_bytes_written(self) -> float:
        """Total functional bytes written to disk across the cluster."""
        return sum(record.disk_write_bytes for record in self._usage.values())

    def total_bytes_read(self) -> float:
        """Total functional bytes read from disk across the cluster."""
        return sum(record.disk_read_bytes for record in self._usage.values())

    # ------------------------------------------------------------------ internals
    def _disk_seconds(self, node: Node, record: NodeUsage) -> float:
        read_bytes = self._cost.scale_bytes(record.disk_read_bytes)
        write_bytes = self._cost.scale_bytes(record.disk_write_bytes)
        return self._cost.disk(node).mixed_read_write(read_bytes, write_bytes)

    def _network_seconds(self, node: Node, record: NodeUsage) -> float:
        # Full-duplex NICs: inbound and outbound streams proceed concurrently.
        volume = max(record.net_in_bytes, record.net_out_bytes)
        volume = self._cost.scale_bytes(volume)
        if volume <= 0:
            return 0.0
        return volume / (node.hardware.network_mb_s * _MB)
