"""Failure injection for the fault-tolerance experiment (Section 6.4.3).

The paper kills all Java processes on one randomly chosen node after 50% of job progress and
sets the TaskTracker/datanode expiry interval to 30 seconds.  :class:`FailureInjector`
reproduces that protocol against the simulated cluster.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.cluster.topology import Cluster


@dataclass(frozen=True)
class FailureEvent:
    """A scheduled node failure.

    Attributes
    ----------
    node_id:
        The node that fails.
    at_progress:
        Fraction of job progress (0..1) after which the failure strikes.
    expiry_interval_s:
        Seconds the framework waits before declaring the node dead (Hadoop's expiry interval).
    """

    node_id: int
    at_progress: float
    expiry_interval_s: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.at_progress <= 1.0:
            raise ValueError("at_progress must lie in [0, 1]")
        if self.expiry_interval_s < 0:
            raise ValueError("expiry interval must be non-negative")


class FailureInjector:
    """Creates :class:`FailureEvent` instances against a cluster."""

    def __init__(self, cluster: Cluster, seed: int = 0) -> None:
        self._cluster = cluster
        self._rng = random.Random(seed)

    def random_node_failure(
        self,
        at_progress: float = 0.5,
        expiry_interval_s: float = 30.0,
        exclude: Optional[set[int]] = None,
    ) -> FailureEvent:
        """Pick a random alive node to fail at ``at_progress`` of job progress."""
        exclude = exclude or set()
        candidates = [node.node_id for node in self._cluster.alive_nodes if node.node_id not in exclude]
        if not candidates:
            raise RuntimeError("no alive node available to fail")
        node_id = self._rng.choice(candidates)
        return FailureEvent(node_id=node_id, at_progress=at_progress, expiry_interval_s=expiry_interval_s)

    def node_failure(
        self, node_id: int, at_progress: float = 0.5, expiry_interval_s: float = 30.0
    ) -> FailureEvent:
        """Fail a specific node (deterministic variant used in tests)."""
        if not self._cluster.has_node(node_id):
            raise KeyError(f"node {node_id} is not part of the cluster")
        return FailureEvent(node_id=node_id, at_progress=at_progress, expiry_interval_s=expiry_interval_s)
