"""Failure injection for the fault-tolerance experiment (Section 6.4.3).

The paper kills all Java processes on one randomly chosen node after 50% of job progress and
sets the TaskTracker/datanode expiry interval to 30 seconds.  :class:`FailureInjector`
reproduces that protocol against the simulated cluster.

For *concurrent* batches (the multi-tenant service layer), :class:`ConcurrentChaos` bundles
the faults one interleaved map phase can suffer at once: a node death at an absolute batch
time, individual task-attempt failures, and straggler nodes whose attempts run slower by a
constant factor (timeline only — functional output is never altered).  The concurrent
scheduler (:meth:`~repro.mapreduce.job_tracker.JobTracker.run_concurrent_map_phases`)
consumes it directly; see ``docs/scheduling.md``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.cluster.topology import Cluster


@dataclass(frozen=True)
class FailureEvent:
    """A scheduled node failure.

    Attributes
    ----------
    node_id:
        The node that fails.
    at_progress:
        Fraction of job progress (0..1) after which the failure strikes.
    expiry_interval_s:
        Seconds the framework waits before declaring the node dead (Hadoop's expiry interval).
    """

    node_id: int
    at_progress: float
    expiry_interval_s: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.at_progress <= 1.0:
            raise ValueError("at_progress must lie in [0, 1]")
        if self.expiry_interval_s < 0:
            raise ValueError("expiry interval must be non-negative")


@dataclass(frozen=True)
class TaskFailureSpec:
    """One injected map-task failure inside a concurrent batch.

    The targeted attempt runs to its natural finish, then *fails*: its output and counters
    are discarded and the task is requeued (counted in ``RESCHEDULED_MAP_TASKS``).  The
    first ``attempts`` attempt numbers of the task are doomed, so ``attempts=2`` makes the
    task fail twice before its third attempt sticks — Hadoop's retry ladder in miniature.
    """

    job_index: int
    task_id: int
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.job_index < 0 or self.task_id < 0:
            raise ValueError("job_index and task_id must be non-negative")
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")

    def dooms(self, job_index: int, task_id: int, attempt: int) -> bool:
        """Whether this spec fails the given attempt of the given task."""
        return (
            job_index == self.job_index
            and task_id == self.task_id
            and attempt <= self.attempts
        )


@dataclass
class ConcurrentChaos:
    """The fault plan one concurrent map phase runs under.

    Attributes
    ----------
    node_failure:
        A node death; ``kill_time_s`` places it on the batch's absolute simulated timeline
        (the event's own ``at_progress`` is ignored here — a batch has no single job-progress
        fraction to anchor it to).  Attempts running on the node at the kill are lost and
        requeued after the event's expiry interval, exactly like the serial Figure 8 path.
    kill_time_s:
        Absolute batch time at which ``node_failure`` strikes.  Required iff a
        ``node_failure`` is given.
    task_failures:
        Injected per-attempt task failures (see :class:`TaskFailureSpec`).
    slow_nodes:
        Straggler injection: attempts launched on ``node_id`` take ``factor`` times as long
        on the simulated timeline.  Factors must be >= 1; functional output is unaffected,
        which is what lets speculation's answers stay bit-identical.
    """

    node_failure: Optional[FailureEvent] = None
    kill_time_s: Optional[float] = None
    task_failures: tuple[TaskFailureSpec, ...] = ()
    slow_nodes: Mapping[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if (self.node_failure is None) != (self.kill_time_s is None):
            raise ValueError("node_failure and kill_time_s must be given together")
        if self.kill_time_s is not None and self.kill_time_s < 0:
            raise ValueError("kill_time_s must be non-negative")
        self.task_failures = tuple(self.task_failures)
        for factor in self.slow_nodes.values():
            if factor < 1.0:
                raise ValueError("straggler slow-down factors must be >= 1")

    def slow_factor(self, node_id: int) -> float:
        """Straggler slow-down multiplier for attempts launched on ``node_id``."""
        return float(self.slow_nodes.get(node_id, 1.0))

    def dooms(self, job_index: int, task_id: int, attempt: int) -> bool:
        """Whether any injected task failure fails this attempt."""
        return any(spec.dooms(job_index, task_id, attempt) for spec in self.task_failures)


class FailureInjector:
    """Creates :class:`FailureEvent` instances against a cluster."""

    def __init__(self, cluster: Cluster, seed: int = 0) -> None:
        self._cluster = cluster
        self._rng = random.Random(seed)

    def random_node_failure(
        self,
        at_progress: float = 0.5,
        expiry_interval_s: float = 30.0,
        exclude: Optional[set[int]] = None,
    ) -> FailureEvent:
        """Pick a random alive node to fail at ``at_progress`` of job progress."""
        exclude = exclude or set()
        candidates = [node.node_id for node in self._cluster.alive_nodes if node.node_id not in exclude]
        if not candidates:
            raise RuntimeError("no alive node available to fail")
        node_id = self._rng.choice(candidates)
        return FailureEvent(node_id=node_id, at_progress=at_progress, expiry_interval_s=expiry_interval_s)

    def node_failure(
        self, node_id: int, at_progress: float = 0.5, expiry_interval_s: float = 30.0
    ) -> FailureEvent:
        """Fail a specific node (deterministic variant used in tests)."""
        if not self._cluster.has_node(node_id):
            raise KeyError(f"node {node_id} is not part of the cluster")
        return FailureEvent(node_id=node_id, at_progress=at_progress, expiry_interval_s=expiry_interval_s)
