"""Hardware profiles for simulated cluster nodes.

The paper uses four node types (Section 6.1 and 6.3.3):

- ``physical``:  2.66 GHz quad-core Xeon, 16 GB RAM, 6x750 GB SATA disks, 3x GbE.
- ``m1.large``:  EC2 large instance (2 weak virtual cores, moderate I/O).
- ``m1.xlarge``: EC2 extra-large instance (4 virtual cores, high I/O).
- ``cc1.4xlarge``: EC2 cluster-quadruple instance (8 fast cores, 10 GbE, lowest variance).

Scale-up (Table 2) depends on the *relative* CPU vs. I/O capability of each profile: HAIL's
upload is CPU-hungry (parse to binary, sort, index, checksum) while stock Hadoop's upload is
I/O-bound, so better CPUs close or invert the gap.  The numbers below are calibrated so that the
reproduction exhibits the same ordering and comparable factors; they are not vendor datasheets.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class HardwareProfile:
    """Static description of one node's hardware.

    Attributes
    ----------
    name:
        Human-readable profile name (``"physical"``, ``"m1.large"``, ...).
    cores:
        Number of CPU cores usable for parsing/sorting/indexing.
    core_speed:
        Relative per-core speed; 1.0 is the physical cluster's 2.66 GHz Xeon core.
    disk_read_mb_s / disk_write_mb_s:
        Effective sequential disk bandwidth in MB/s for a single stream.
    disk_seek_ms:
        Average seek (plus rotational) latency in milliseconds.
    disks:
        Number of independent data disks (HDFS spreads block files across them).
    network_mb_s:
        Effective point-to-point network bandwidth in MB/s.
    ram_gb:
        Main memory; HAIL assembles blocks in memory, so this bounds concurrent blocks.
    io_variance:
        Coefficient of variation of I/O throughput.  EC2 nodes show much larger run-to-run
        variance than the physical cluster (Schad et al., PVLDB 2010, cited as [30]).
    """

    name: str
    cores: int
    core_speed: float
    disk_read_mb_s: float
    disk_write_mb_s: float
    disk_seek_ms: float
    disks: int
    network_mb_s: float
    ram_gb: float
    io_variance: float = 0.0

    # ------------------------------------------------------------------ factory methods
    @classmethod
    def physical(cls) -> "HardwareProfile":
        """The 10-node physical cluster used as the paper's primary testbed."""
        return cls(
            name="physical",
            cores=4,
            core_speed=1.0,
            disk_read_mb_s=95.0,
            disk_write_mb_s=80.0,
            disk_seek_ms=5.0,
            disks=6,
            network_mb_s=110.0,
            ram_gb=16.0,
            io_variance=0.02,
        )

    @classmethod
    def ec2_large(cls) -> "HardwareProfile":
        """EC2 ``m1.large``: two weak virtual cores, shared and variable I/O."""
        return cls(
            name="m1.large",
            cores=2,
            core_speed=0.4,
            disk_read_mb_s=70.0,
            disk_write_mb_s=60.0,
            disk_seek_ms=6.5,
            disks=2,
            network_mb_s=70.0,
            ram_gb=7.5,
            io_variance=0.12,
        )

    @classmethod
    def ec2_xlarge(cls) -> "HardwareProfile":
        """EC2 ``m1.xlarge``: four virtual cores, better I/O than ``m1.large``."""
        return cls(
            name="m1.xlarge",
            cores=4,
            core_speed=0.55,
            disk_read_mb_s=85.0,
            disk_write_mb_s=72.0,
            disk_seek_ms=6.0,
            disks=3,
            network_mb_s=90.0,
            ram_gb=15.0,
            io_variance=0.10,
        )

    @classmethod
    def ec2_cluster_quad(cls) -> "HardwareProfile":
        """EC2 ``cc1.4xlarge``: eight fast cores, 10 GbE, lowest variance of the EC2 types."""
        return cls(
            name="cc1.4xlarge",
            cores=8,
            core_speed=0.85,
            disk_read_mb_s=90.0,
            disk_write_mb_s=78.0,
            disk_seek_ms=5.5,
            disks=4,
            network_mb_s=400.0,
            ram_gb=23.0,
            io_variance=0.05,
        )

    @classmethod
    def by_name(cls, name: str) -> "HardwareProfile":
        """Look up a predefined profile by name.

        Raises
        ------
        KeyError
            If ``name`` does not match a predefined profile.
        """
        profiles = {
            "physical": cls.physical,
            "m1.large": cls.ec2_large,
            "large": cls.ec2_large,
            "m1.xlarge": cls.ec2_xlarge,
            "xlarge": cls.ec2_xlarge,
            "cc1.4xlarge": cls.ec2_cluster_quad,
            "cluster-quadruple": cls.ec2_cluster_quad,
        }
        try:
            return profiles[name]()
        except KeyError:
            raise KeyError(
                f"unknown hardware profile {name!r}; known: {sorted(profiles)}"
            ) from None

    # ------------------------------------------------------------------ derived quantities
    @property
    def aggregate_cpu(self) -> float:
        """Total relative CPU capability of the node (cores x per-core speed)."""
        return self.cores * self.core_speed

    @property
    def aggregate_disk_read_mb_s(self) -> float:
        """Aggregate read bandwidth when several streams hit different disks."""
        return self.disk_read_mb_s * min(self.disks, 2)

    @property
    def aggregate_disk_write_mb_s(self) -> float:
        """Aggregate write bandwidth when several streams hit different disks."""
        return self.disk_write_mb_s * min(self.disks, 2)

    def scaled(self, **overrides: float) -> "HardwareProfile":
        """Return a copy of this profile with some attributes replaced.

        Useful for what-if experiments (e.g. doubling disk bandwidth).
        """
        return replace(self, **overrides)


#: Profiles in the order used by the scale-up experiment (Table 2).
SCALE_UP_PROFILES: tuple[str, ...] = ("m1.large", "m1.xlarge", "cc1.4xlarge", "physical")
