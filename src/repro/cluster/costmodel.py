"""The central cost model: turns byte counts and hardware profiles into simulated seconds.

Everything the substrates (HDFS, MapReduce) and the systems (Hadoop, Hadoop++, HAIL) charge goes
through a single :class:`CostModel` instance so that calibration lives in one place
(:class:`CostParameters`).  The model is intentionally analytical — the paper's results are
driven by disk/network bandwidth, seeks, CPU parse/sort rates and per-task scheduling overhead,
all of which appear explicitly below.

Scaling
-------
Functional execution in this reproduction uses small blocks (kilobytes to a few megabytes of
real Python data).  ``CostParameters.data_scale`` multiplies byte and record counts when costs
are computed, so a functional 64 KB block can stand in for a logical 64 MB HDFS block while the
actual record contents stay laptop-sized.  Shapes (ratios between systems, crossovers) are
preserved because every system is scaled identically.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace

from repro.cluster.cpu import CpuModel, CpuRates
from repro.cluster.disk import DiskModel
from repro.cluster.hardware import HardwareProfile
from repro.cluster.network import NetworkModel
from repro.cluster.node import Node


@dataclass(frozen=True)
class CostParameters:
    """Calibration knobs of the cost model.

    The HDFS and MapReduce constants follow Hadoop 0.20 defaults (the version the paper uses):
    64 MB blocks, 512 B chunks, 64 KB packets, replication factor three, two map slots per
    TaskTracker.  The scheduling overheads reproduce the paper's observation (Section 6.4.1)
    that Hadoop "spends several seconds" to schedule and start a single short task.
    """

    # ---- HDFS constants -------------------------------------------------------------
    replication: int = 3
    chunk_size: int = 512
    packet_size: int = 64 * 1024
    block_size: int = 64 * 1024 * 1024

    # ---- scaling --------------------------------------------------------------------
    #: Multiplier applied to functional byte/record counts before charging costs.
    data_scale: float = 1.0

    # ---- MapReduce framework --------------------------------------------------------
    #: Map slots per TaskTracker (Hadoop 0.20 default).
    map_slots_per_node: int = 2
    #: Fixed per-job overhead: job submission, split computation, job setup/cleanup tasks.
    job_startup_s: float = 6.5
    #: Per-task overhead: heartbeat-based assignment, JVM start, task initialisation/commit.
    task_scheduling_overhead_s: float = 3.6
    #: Additional per-task overhead when the input format must read per-block index headers
    #: during the split phase (Hadoop++ does; HAIL does not, Section 6.4.1).
    split_header_read_s: float = 0.012
    #: Fixed per-block RecordReader setup cost (opening streams, allocating buffers).
    record_reader_setup_s: float = 0.05
    #: TaskTracker/datanode expiry interval for the failover experiment.
    expiry_interval_s: float = 30.0

    # ---- upload pipeline ------------------------------------------------------------
    #: Per-block fixed overhead on the client (namenode round trip, pipeline setup).
    block_setup_s: float = 0.02

    # ---- variance -------------------------------------------------------------------
    #: Enable sampling of I/O variance (EC2 experiments); deterministic given the seed.
    enable_variance: bool = True
    variance_seed: int = 1234

    def with_scale(self, data_scale: float) -> "CostParameters":
        """Return a copy with a different ``data_scale``."""
        if data_scale <= 0:
            raise ValueError("data_scale must be positive")
        return replace(self, data_scale=data_scale)

    def with_replication(self, replication: int) -> "CostParameters":
        """Return a copy with a different replication factor."""
        if replication < 1:
            raise ValueError("replication factor must be at least one")
        return replace(self, replication=replication)


class CostModel:
    """Produces simulated durations for disk, network, CPU and framework events.

    One :class:`CostModel` is shared by every component of a simulated deployment; per-node
    models (:class:`DiskModel`, :class:`CpuModel`) are derived lazily from each node's hardware
    profile and cached.
    """

    def __init__(
        self,
        params: CostParameters | None = None,
        cpu_rates: CpuRates | None = None,
    ) -> None:
        self.params = params if params is not None else CostParameters()
        self._cpu_rates = cpu_rates if cpu_rates is not None else CpuRates()
        self.network = NetworkModel()
        self._disk_cache: dict[str, DiskModel] = {}
        self._cpu_cache: dict[str, CpuModel] = {}
        self._rng = random.Random(self.params.variance_seed)

    # ------------------------------------------------------------------ scaling helpers
    def scale_bytes(self, num_bytes: float) -> float:
        """Apply ``data_scale`` to a functional byte count."""
        return num_bytes * self.params.data_scale

    def scale_count(self, count: float) -> float:
        """Apply ``data_scale`` to a functional record/value count."""
        return count * self.params.data_scale

    # ------------------------------------------------------------------ per-node models
    def disk(self, node: Node | HardwareProfile) -> DiskModel:
        """Disk model for a node (cached per hardware profile)."""
        hardware = node.hardware if isinstance(node, Node) else node
        model = self._disk_cache.get(hardware.name)
        if model is None:
            model = DiskModel(hardware=hardware)
            self._disk_cache[hardware.name] = model
        return model

    def cpu(self, node: Node | HardwareProfile) -> CpuModel:
        """CPU model for a node (cached per hardware profile)."""
        hardware = node.hardware if isinstance(node, Node) else node
        model = self._cpu_cache.get(hardware.name)
        if model is None:
            model = CpuModel(hardware=hardware, rates=self._cpu_rates)
            self._cpu_cache[hardware.name] = model
        return model

    # ------------------------------------------------------------------ variance
    def vary_io(self, node: Node | HardwareProfile, seconds: float) -> float:
        """Apply the node's I/O variance to an I/O-bound duration.

        EC2 instances exhibit substantial run-to-run I/O variance (the paper cites [30] and
        observes that I/O-bound Hadoop suffers from it more than CPU-bound HAIL).  The sampled
        factor is always >= a small floor so durations never become negative.
        """
        if seconds <= 0 or not self.params.enable_variance:
            return max(seconds, 0.0)
        hardware = node.hardware if isinstance(node, Node) else node
        if hardware.io_variance <= 0:
            return seconds
        factor = self._rng.gauss(1.0, hardware.io_variance)
        return seconds * max(0.5, factor)

    def reseed(self, seed: int) -> None:
        """Reset the variance random stream (used to make experiment trials reproducible)."""
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------ framework events
    def job_startup(self) -> float:
        """Fixed cost of submitting a MapReduce job (JobClient, split phase, setup task)."""
        return self.params.job_startup_s

    def task_overhead(self) -> float:
        """Per-task scheduling/launch/commit overhead."""
        return self.params.task_scheduling_overhead_s

    def split_phase(self, num_blocks: int, reads_block_headers: bool) -> float:
        """Cost of the JobClient split phase.

        ``reads_block_headers`` models Hadoop++, whose input format must fetch a header from
        every block before it can compute splits; HAIL keeps that information in the namenode's
        replica directory (Dir_rep) and avoids the reads (Section 6.4.1).
        """
        if not reads_block_headers:
            return 0.0
        return num_blocks * self.params.split_header_read_s

    def expiry_interval(self) -> float:
        """Seconds before a dead TaskTracker/datanode is noticed."""
        return self.params.expiry_interval_s

    def block_setup(self) -> float:
        """Per-block pipeline setup cost during upload."""
        return self.params.block_setup_s

    def reader_setup(self) -> float:
        """Per-block RecordReader setup cost (stream opening, buffers)."""
        return self.params.record_reader_setup_s

    # ------------------------------------------------------------------ calibration
    def replace_params(self, **overrides) -> "CostModel":
        """Return a new :class:`CostModel` with some parameters overridden."""
        new_params = replace(self.params, **overrides)
        return CostModel(params=new_params, cpu_rates=self._cpu_rates)

    def describe(self) -> dict:
        """Expose the calibration (used by experiment reports and EXPERIMENTS.md)."""
        return {
            "replication": self.params.replication,
            "block_size": self.params.block_size,
            "data_scale": self.params.data_scale,
            "map_slots_per_node": self.params.map_slots_per_node,
            "job_startup_s": self.params.job_startup_s,
            "task_scheduling_overhead_s": self.params.task_scheduling_overhead_s,
            "expiry_interval_s": self.params.expiry_interval_s,
        }
