"""Cluster substrate: hardware profiles, nodes, topology, cost model, simulated time.

The paper evaluates HAIL on six clusters (one physical 10-node cluster, EC2 clusters of
10/50/100 nodes with three different node types).  This package replaces those clusters with a
laptop-scale simulation: every node carries a :class:`HardwareProfile` and all durations are
*simulated seconds* produced by :class:`CostModel` from byte counts and hardware parameters.
"""

from repro.cluster.hardware import HardwareProfile
from repro.cluster.node import Node, NodeState
from repro.cluster.topology import Cluster
from repro.cluster.disk import DiskModel, DiskPressurePolicy
from repro.cluster.network import NetworkModel
from repro.cluster.cpu import CpuModel
from repro.cluster.costmodel import CostModel, CostParameters
from repro.cluster.simclock import SimClock, ParallelTimeline
from repro.cluster.ledger import TransferLedger, NodeUsage
from repro.cluster.failure import FailureInjector, FailureEvent

__all__ = [
    "HardwareProfile",
    "Node",
    "NodeState",
    "Cluster",
    "DiskModel",
    "DiskPressurePolicy",
    "NetworkModel",
    "CpuModel",
    "CostModel",
    "CostParameters",
    "SimClock",
    "ParallelTimeline",
    "TransferLedger",
    "NodeUsage",
    "FailureInjector",
    "FailureEvent",
]
