"""CPU cost model: parsing, binary conversion, sorting, index construction and checksums.

Rates are expressed for one reference core (the physical cluster's 2.66 GHz Xeon core,
``core_speed == 1.0``) and scale linearly with a node's ``core_speed`` and with the number of
cores assigned to the work.  Two kinds of terms appear:

- *per-byte* terms (MB/s throughputs) for streaming work such as checksumming, moving PAX
  minipages or scanning text, and
- *per-record* terms for work whose cost is dominated by per-tuple overhead in a JVM-style
  runtime (string splitting, object creation, tuple reconstruction) — the paper's RecordReader
  measurements (hundreds of milliseconds even for small index scans) are only explainable with
  such per-tuple costs.

The default values are calibrated so that the reproduction exhibits the paper's shapes: stock
uploads are I/O-bound on the physical cluster (hiding HAIL's parse/sort/index work) but become
CPU-bound on weak EC2 cores (Table 2), and full-scan RecordReader times land in the seconds
while index scans land in the tens-to-hundreds of milliseconds (Figures 6(b), 7(b)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.hardware import HardwareProfile

_MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class CpuRates:
    """Throughputs (per reference core) of the CPU-bound steps."""

    # ---- upload-side, per byte -------------------------------------------------------
    #: Parsing *string/variable-size* field bytes during upload: per-character copies, UTF-8
    #: handling and object churn make these the dominant parse cost in a JVM-style runtime.
    string_parse_mb_s: float = 10.0
    #: Parsing *numeric/date* field bytes during upload (digit-to-binary conversion).
    numeric_parse_mb_s: float = 40.0
    #: Laying typed values out column-wise into a PAX block.
    pax_build_mb_s: float = 300.0
    #: CRC32C checksum computation.
    checksum_mb_s: float = 400.0
    #: Writing the in-memory sparse index structure (per entry moved).
    index_build_mb_s: float = 400.0
    #: Constant per comparison of the in-memory sort (n log n model), seconds.
    sort_seconds_per_value: float = 3.0e-8

    # ---- query-side, per byte --------------------------------------------------------
    #: Scanning text for record boundaries and splitting attributes (stock Hadoop reader).
    text_scan_mb_s: float = 35.0
    #: Evaluating a simple predicate over already-typed column values.
    predicate_eval_mb_s: float = 900.0
    #: Reconstructing projected tuples from PAX minipages to row form.
    tuple_reconstruction_mb_s: float = 350.0

    # ---- query-side, per record ------------------------------------------------------
    #: Per text row: line object, split(), per-field substrings (stock Hadoop map input).
    text_row_seconds: float = 2.0e-6
    #: Per binary row touched by a full scan of binary/row-layout blocks.
    binary_row_seconds: float = 1.5e-6
    #: Per candidate row post-filtered after an index lookup.
    candidate_row_seconds: float = 4.0e-7
    #: Per qualifying row handed to the map function (tuple/record object creation).
    qualifying_row_seconds: float = 2.0e-6


@dataclass(frozen=True)
class CpuModel:
    """Charges simulated seconds for CPU-bound work on a node."""

    hardware: HardwareProfile
    rates: CpuRates = CpuRates()

    # ------------------------------------------------------------------ helpers
    def _speed(self, cores: int) -> float:
        return self.hardware.core_speed * max(1, min(cores, self.hardware.cores))

    def _per_bytes(self, num_bytes: float, rate_mb_s: float, cores: int = 1) -> float:
        if num_bytes <= 0:
            return 0.0
        return num_bytes / (rate_mb_s * self._speed(cores) * _MB)

    def _per_rows(self, num_rows: float, seconds_per_row: float, cores: int = 1) -> float:
        if num_rows <= 0:
            return 0.0
        return num_rows * seconds_per_row / self._speed(cores)

    # ------------------------------------------------------------------ upload-side work
    def parse_to_binary(self, num_bytes: float, cores: int = 1, string_fraction: float = 0.5) -> float:
        """Parse text records into typed binary values (the HAIL client conversion).

        ``string_fraction`` is the share of the input bytes that belongs to string/variable-size
        fields; these are charged at the (slower) string rate, the remainder at the numeric
        conversion rate.  String-heavy datasets such as UserVisits therefore parse slower per
        byte than the all-integer Synthetic dataset, which is what Table 2 requires.
        """
        string_fraction = min(1.0, max(0.0, string_fraction))
        string_bytes = num_bytes * string_fraction
        numeric_bytes = num_bytes - string_bytes
        return self._per_bytes(string_bytes, self.rates.string_parse_mb_s, cores) + self._per_bytes(
            numeric_bytes, self.rates.numeric_parse_mb_s, cores
        )

    def pax_build(self, num_bytes: float, cores: int = 1) -> float:
        """Lay typed values out column-wise into a PAX block."""
        return self._per_bytes(num_bytes, self.rates.pax_build_mb_s, cores)

    def checksum(self, num_bytes: float, cores: int = 1) -> float:
        """Compute HDFS chunk checksums over ``num_bytes``."""
        return self._per_bytes(num_bytes, self.rates.checksum_mb_s, cores)

    def sort_block(self, num_values: int, value_bytes: float, cores: int = 1) -> float:
        """Sort a block of ``num_values`` records in memory and permute all its columns."""
        if num_values <= 0:
            return 0.0
        speed = self._speed(cores)
        comparisons = num_values * math.log2(max(num_values, 2))
        compare_seconds = comparisons * self.rates.sort_seconds_per_value / speed
        move_seconds = self._per_bytes(value_bytes, self.rates.pax_build_mb_s, cores)
        return compare_seconds + move_seconds

    def build_index(self, num_values: int, entry_bytes: float = 8.0, cores: int = 1) -> float:
        """Build the sparse clustered index over a sorted column."""
        if num_values <= 0:
            return 0.0
        return self._per_bytes(num_values * entry_bytes, self.rates.index_build_mb_s, cores)

    # ------------------------------------------------------------------ query-side work
    def scan_text(self, num_bytes: float, num_rows: float, cores: int = 1) -> float:
        """Stock-Hadoop record reader work: find lines, split attributes, build row objects."""
        return self._per_bytes(num_bytes, self.rates.text_scan_mb_s, cores) + self._per_rows(
            num_rows, self.rates.text_row_seconds, cores
        )

    def scan_binary_rows(self, num_bytes: float, num_rows: float, cores: int = 1) -> float:
        """Full scan over binary rows (Hadoop++ trojan blocks without a usable index)."""
        return self._per_bytes(num_bytes, self.rates.predicate_eval_mb_s, cores) + self._per_rows(
            num_rows, self.rates.binary_row_seconds, cores
        )

    def post_filter(self, num_bytes: float, num_rows: float, cores: int = 1) -> float:
        """Apply the selection predicate to the candidate rows of an index lookup."""
        return self._per_bytes(num_bytes, self.rates.predicate_eval_mb_s, cores) + self._per_rows(
            num_rows, self.rates.candidate_row_seconds, cores
        )

    def reconstruct_tuples(self, num_bytes: float, num_rows: float, cores: int = 1) -> float:
        """Reconstruct the projected attributes of the qualifying rows (PAX to row form)."""
        return self._per_bytes(
            num_bytes, self.rates.tuple_reconstruction_mb_s, cores
        ) + self._per_rows(num_rows, self.rates.qualifying_row_seconds, cores)

    # ------------------------------------------------------------------ backwards-compatible aliases
    def evaluate_predicate(self, num_bytes: float, cores: int = 1) -> float:
        """Per-byte predicate evaluation (no per-row term); used for coarse charges."""
        return self._per_bytes(num_bytes, self.rates.predicate_eval_mb_s, cores)
