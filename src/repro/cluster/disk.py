"""Disk cost model: sequential transfers, seeks and read/write contention."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.hardware import HardwareProfile

_MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class DiskModel:
    """Charges simulated seconds for disk operations on a node.

    The model follows the arithmetic the paper itself uses in Section 3.5 (e.g. "a realistic
    hard disk transfer rate of 100 MB/sec", "initial seek of 5 ms"): a sequential access costs
    one seek plus ``bytes / bandwidth``.  A single ``contention`` knob (default 0.35) models the
    throughput loss when many replication streams interleave reads and writes on the same
    spindles — it is calibrated so that a datanode's *effective* upload bandwidth lands near the
    ~55 MB/s the paper's measured upload times imply, well below the raw sequential rate.
    """

    hardware: HardwareProfile
    contention: float = 0.35

    # ------------------------------------------------------------------ sequential access
    def sequential_read(self, num_bytes: float, streams: int = 1) -> float:
        """Seconds to read ``num_bytes`` sequentially with ``streams`` concurrent readers."""
        if num_bytes <= 0:
            return 0.0
        bandwidth = self._effective_bandwidth(self.hardware.disk_read_mb_s, streams)
        return self.seek() + num_bytes / (bandwidth * _MB)

    def sequential_write(self, num_bytes: float, streams: int = 1) -> float:
        """Seconds to write ``num_bytes`` sequentially with ``streams`` concurrent writers."""
        if num_bytes <= 0:
            return 0.0
        bandwidth = self._effective_bandwidth(self.hardware.disk_write_mb_s, streams)
        return self.seek() + num_bytes / (bandwidth * _MB)

    def mixed_read_write(self, read_bytes: float, write_bytes: float) -> float:
        """Seconds for a workload that both reads and writes on the same disks.

        Reads and writes on the same spindles do not overlap for free; the combined volume is
        charged at a contention-degraded bandwidth, spread over the node's independent disks.
        """
        total = max(read_bytes, 0.0) + max(write_bytes, 0.0)
        if total <= 0:
            return 0.0
        read_bw = self.hardware.aggregate_disk_read_mb_s
        write_bw = self.hardware.aggregate_disk_write_mb_s
        blended = self.contention * min(read_bw, write_bw)
        return total / (blended * _MB)

    # ------------------------------------------------------------------ random access
    def seek(self) -> float:
        """Seconds for one average seek."""
        return self.hardware.disk_seek_ms / 1000.0

    def random_read(self, num_bytes: float, num_seeks: int = 1) -> float:
        """Seconds for a random access: ``num_seeks`` seeks plus the data transfer."""
        if num_bytes <= 0 and num_seeks <= 0:
            return 0.0
        transfer = max(num_bytes, 0.0) / (self.hardware.disk_read_mb_s * _MB)
        return max(num_seeks, 0) * self.seek() + transfer

    # ------------------------------------------------------------------ helpers
    def _effective_bandwidth(self, single_stream_mb_s: float, streams: int) -> float:
        """Per-stream bandwidth when ``streams`` sequential streams share the node's disks."""
        streams = max(1, streams)
        usable_disks = max(1, self.hardware.disks)
        if streams <= usable_disks:
            return single_stream_mb_s
        return single_stream_mb_s * usable_disks / streams
