"""Disk cost model: sequential transfers, seeks, read/write contention — and disk pressure.

Besides the timing model (:class:`DiskModel`), this module defines the *capacity* side of a
node's disks: :class:`DiskPressurePolicy` turns a per-node byte ceiling plus high/low watermarks
into the two questions the adaptive-index lifecycle manager asks — "is this node under
pressure?" and "how many bytes must eviction free?" (see :mod:`repro.engine.lifecycle`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.hardware import HardwareProfile

_MB = 1024.0 * 1024.0

#: Default pressure trigger / drain target, shared with ``HailConfig``'s lifecycle knobs so
#: the two declarations cannot drift apart.
DEFAULT_HIGH_WATERMARK = 0.85
DEFAULT_LOW_WATERMARK = 0.70


@dataclass(frozen=True)
class DiskPressurePolicy:
    """Per-node disk-capacity policy: when is a node full enough to trigger eviction?

    Mirrors the watermark scheme of real storage daemons (HDFS balancer thresholds, Elasticsearch
    flood stages): a node whose tracked usage exceeds ``high_watermark * capacity_bytes`` is
    *under pressure*, and eviction should free bytes until usage falls back to
    ``low_watermark * capacity_bytes`` (the gap between the watermarks is hysteresis — it keeps
    the evictor from firing on every job once usage hovers near the ceiling).  The policy is
    agnostic about *which* byte count it bounds; the adaptive-index lifecycle manager feeds it
    each node's adaptive-replica footprint (its opportunistic-storage budget).

    Attributes
    ----------
    capacity_bytes:
        Per-node ceiling in bytes for the tracked usage; ``None`` disables pressure entirely
        (nothing is ever evicted, the pre-lifecycle behaviour).
    high_watermark:
        Fraction of ``capacity_bytes`` above which the node counts as under pressure.
    low_watermark:
        Fraction of ``capacity_bytes`` eviction drains the node down to.
    """

    capacity_bytes: Optional[float] = None
    high_watermark: float = DEFAULT_HIGH_WATERMARK
    low_watermark: float = DEFAULT_LOW_WATERMARK

    def __post_init__(self) -> None:
        if self.capacity_bytes is not None and self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive (or None to disable pressure)")
        if not 0.0 < self.low_watermark <= self.high_watermark <= 1.0:
            raise ValueError("watermarks must satisfy 0 < low <= high <= 1")

    @property
    def enabled(self) -> bool:
        """True when a capacity ceiling is configured."""
        return self.capacity_bytes is not None

    def under_pressure(self, used_bytes: float) -> bool:
        """True when ``used_bytes`` exceeds the high watermark of the capacity ceiling."""
        if self.capacity_bytes is None:
            return False
        return used_bytes > self.high_watermark * self.capacity_bytes

    def bytes_to_free(self, used_bytes: float) -> float:
        """Bytes eviction must release to bring ``used_bytes`` down to the low watermark."""
        if self.capacity_bytes is None:
            return 0.0
        return max(0.0, used_bytes - self.low_watermark * self.capacity_bytes)


@dataclass(frozen=True)
class DiskModel:
    """Charges simulated seconds for disk operations on a node.

    The model follows the arithmetic the paper itself uses in Section 3.5 (e.g. "a realistic
    hard disk transfer rate of 100 MB/sec", "initial seek of 5 ms"): a sequential access costs
    one seek plus ``bytes / bandwidth``.  A single ``contention`` knob (default 0.35) models the
    throughput loss when many replication streams interleave reads and writes on the same
    spindles — it is calibrated so that a datanode's *effective* upload bandwidth lands near the
    ~55 MB/s the paper's measured upload times imply, well below the raw sequential rate.
    """

    hardware: HardwareProfile
    contention: float = 0.35

    # ------------------------------------------------------------------ sequential access
    def sequential_read(self, num_bytes: float, streams: int = 1) -> float:
        """Seconds to read ``num_bytes`` sequentially with ``streams`` concurrent readers."""
        if num_bytes <= 0:
            return 0.0
        bandwidth = self._effective_bandwidth(self.hardware.disk_read_mb_s, streams)
        return self.seek() + num_bytes / (bandwidth * _MB)

    def sequential_write(self, num_bytes: float, streams: int = 1) -> float:
        """Seconds to write ``num_bytes`` sequentially with ``streams`` concurrent writers."""
        if num_bytes <= 0:
            return 0.0
        bandwidth = self._effective_bandwidth(self.hardware.disk_write_mb_s, streams)
        return self.seek() + num_bytes / (bandwidth * _MB)

    def mixed_read_write(self, read_bytes: float, write_bytes: float) -> float:
        """Seconds for a workload that both reads and writes on the same disks.

        Reads and writes on the same spindles do not overlap for free; the combined volume is
        charged at a contention-degraded bandwidth, spread over the node's independent disks.
        """
        total = max(read_bytes, 0.0) + max(write_bytes, 0.0)
        if total <= 0:
            return 0.0
        read_bw = self.hardware.aggregate_disk_read_mb_s
        write_bw = self.hardware.aggregate_disk_write_mb_s
        blended = self.contention * min(read_bw, write_bw)
        return total / (blended * _MB)

    # ------------------------------------------------------------------ random access
    def seek(self) -> float:
        """Seconds for one average seek."""
        return self.hardware.disk_seek_ms / 1000.0

    def random_read(self, num_bytes: float, num_seeks: int = 1) -> float:
        """Seconds for a random access: ``num_seeks`` seeks plus the data transfer."""
        if num_bytes <= 0 and num_seeks <= 0:
            return 0.0
        transfer = max(num_bytes, 0.0) / (self.hardware.disk_read_mb_s * _MB)
        return max(num_seeks, 0) * self.seek() + transfer

    # ------------------------------------------------------------------ helpers
    def _effective_bandwidth(self, single_stream_mb_s: float, streams: int) -> float:
        """Per-stream bandwidth when ``streams`` sequential streams share the node's disks."""
        streams = max(1, streams)
        usable_disks = max(1, self.hardware.disks)
        if streams <= usable_disks:
            return single_stream_mb_s
        return single_stream_mb_s * usable_disks / streams
