"""Simulated time accounting.

Every operation in the reproduction returns the number of *simulated seconds* it would take on
the modelled hardware.  :class:`SimClock` accumulates sequential durations;
:class:`ParallelTimeline` composes durations of work that runs concurrently on different nodes
(the overall duration of a parallel phase is the maximum over its participants).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


class SimClock:
    """A monotonically advancing simulated clock."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("simulated time cannot start below zero")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative) and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by a negative duration ({seconds})")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp`` if it lies in the future."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def reset(self) -> None:
        """Reset the clock to zero."""
        self._now = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.3f}s)"


@dataclass
class ParallelTimeline:
    """Duration of a phase whose participants run concurrently.

    Each participant contributes its own duration; the phase completes when the slowest
    participant finishes.  This is how per-node upload times combine into a cluster-wide upload
    time, and how map waves combine into a job runtime.
    """

    durations: dict[object, float] = field(default_factory=dict)

    def add(self, participant: object, seconds: float) -> None:
        """Add ``seconds`` of work for ``participant`` (accumulates across calls)."""
        if seconds < 0:
            raise ValueError("durations must be non-negative")
        self.durations[participant] = self.durations.get(participant, 0.0) + seconds

    def extend(self, items: Iterable[tuple[object, float]]) -> None:
        """Add many ``(participant, seconds)`` pairs."""
        for participant, seconds in items:
            self.add(participant, seconds)

    @property
    def makespan(self) -> float:
        """Duration of the whole phase: the maximum participant duration (0 when empty)."""
        if not self.durations:
            return 0.0
        return max(self.durations.values())

    @property
    def total_work(self) -> float:
        """Sum of all participants' durations (aggregate resource time)."""
        return sum(self.durations.values())

    def duration_of(self, participant: object) -> float:
        """Duration accumulated by one participant (0 when unknown)."""
        return self.durations.get(participant, 0.0)

    def slowest(self) -> tuple[object, float] | None:
        """Return ``(participant, seconds)`` of the slowest participant, or ``None`` if empty."""
        if not self.durations:
            return None
        participant = max(self.durations, key=lambda key: self.durations[key])
        return participant, self.durations[participant]
