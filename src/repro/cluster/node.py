"""Simulated cluster nodes.

A :class:`Node` is the unit of failure and of locality.  Each node typically hosts one HDFS
datanode and one MapReduce TaskTracker (exactly as in the paper's clusters, where TaskTrackers
run co-located with datanodes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cluster.hardware import HardwareProfile


class NodeState(enum.Enum):
    """Lifecycle state of a node."""

    ALIVE = "alive"
    DEAD = "dead"


@dataclass
class Node:
    """One machine of the simulated cluster.

    Attributes
    ----------
    node_id:
        Unique integer identifier within the cluster.
    hardware:
        The node's :class:`~repro.cluster.hardware.HardwareProfile`.
    rack:
        Rack identifier used for locality decisions (same-node < same-rack < off-rack).
    state:
        Whether the node is alive; the failover experiment kills nodes mid-job.
    """

    node_id: int
    hardware: HardwareProfile
    rack: int = 0
    state: NodeState = NodeState.ALIVE
    disk_used_bytes: int = 0

    @property
    def is_alive(self) -> bool:
        """True while the node has not been killed."""
        return self.state == NodeState.ALIVE

    @property
    def hostname(self) -> str:
        """Synthetic host name, e.g. ``node-03``."""
        return f"node-{self.node_id:02d}"

    def kill(self) -> None:
        """Mark the node as failed (all Java processes killed, in the paper's phrasing)."""
        self.state = NodeState.DEAD

    def revive(self) -> None:
        """Bring the node back (used to reset clusters between experiments)."""
        self.state = NodeState.ALIVE

    def charge_disk(self, num_bytes: int) -> None:
        """Account ``num_bytes`` of additional disk usage on this node."""
        if num_bytes < 0:
            raise ValueError("cannot charge a negative number of bytes")
        self.disk_used_bytes += num_bytes

    def release_disk(self, num_bytes: int) -> None:
        """Release previously charged disk usage (block deletion)."""
        self.disk_used_bytes = max(0, self.disk_used_bytes - num_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Node(id={self.node_id}, hw={self.hardware.name}, rack={self.rack}, "
            f"state={self.state.value})"
        )
