"""Network cost model: point-to-point transfers inside the simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.hardware import HardwareProfile

_MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class NetworkModel:
    """Charges simulated seconds for moving bytes between nodes.

    Transfers between distinct nodes are bounded by the slower NIC of the two endpoints, plus a
    small per-transfer latency.  A transfer from a node to itself (short-circuit local read, or
    the first replica of an upload landing on the client's own datanode) costs only a negligible
    loop-back latency, matching HDFS behaviour.
    """

    latency_ms: float = 0.3
    rack_penalty: float = 1.0
    off_rack_penalty: float = 1.15

    def transfer(
        self,
        num_bytes: float,
        src: HardwareProfile,
        dst: HardwareProfile,
        locality: str = "rack",
    ) -> float:
        """Seconds to ship ``num_bytes`` from a node with profile ``src`` to one with ``dst``.

        Parameters
        ----------
        locality:
            ``"node"`` (same machine), ``"rack"`` or ``"off-rack"``; cross-rack transfers pay a
            modest oversubscription penalty.
        """
        if num_bytes <= 0:
            return 0.0
        if locality == "node":
            return self.latency_ms / 1000.0
        bandwidth = min(src.network_mb_s, dst.network_mb_s)
        penalty = self.off_rack_penalty if locality == "off-rack" else self.rack_penalty
        return self.latency_ms / 1000.0 + (num_bytes * penalty) / (bandwidth * _MB)

    def round_trip(self) -> float:
        """Seconds for one empty round trip (ACK latency in the upload pipeline)."""
        return 2.0 * self.latency_ms / 1000.0
