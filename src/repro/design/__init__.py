"""Physical design: choosing which attribute each replica should index.

Section 3.4 of the paper notes that picking the per-replica indexes is easy when the dataset has
no more attributes than replicas (Bob simply indexes all of them) but requires an algorithm
otherwise, and sketches extending the Trojan Layouts algorithm to per-replica clustered indexes
as future work.  :class:`IndexAdvisor` implements a straightforward workload-driven greedy
selection so that the library is usable when the number of candidate attributes exceeds the
replication factor.
"""

from repro.design.advisor import IndexAdvisor, AdvisorRecommendation

__all__ = ["IndexAdvisor", "AdvisorRecommendation"]
