"""A workload-driven per-replica index advisor.

The advisor scores every candidate attribute by how much scan work a clustered index on it would
save across the workload (query weight x (1 - selectivity) for every query whose predicate
filters on the attribute, with the first filter attribute of a conjunction counting fully and
later ones at half weight), then greedily assigns the top ``replication`` attributes — one per
replica.  This reproduces Bob's manual choice on his three-attribute workload and gives a
sensible default when there are more candidate attributes than replicas (Section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.layouts.schema import Schema
from repro.workloads.query import Query


@dataclass(frozen=True)
class AdvisorRecommendation:
    """Outcome of the advisor: the per-replica index attributes plus the scoring detail."""

    index_attributes: tuple[str, ...]
    scores: dict[str, float] = field(hash=False, default_factory=dict)
    covered_queries: dict[str, tuple[str, ...]] = field(hash=False, default_factory=dict)

    @property
    def num_indexes(self) -> int:
        """Number of replicas that receive an index."""
        return len(self.index_attributes)

    def covers(self, query_name: str) -> bool:
        """True when at least one chosen index helps the named query."""
        return bool(self.covered_queries.get(query_name))


class IndexAdvisor:
    """Greedy selection of one clustered-index attribute per replica."""

    def __init__(self, schema: Schema, replication: int = 3) -> None:
        if replication < 1:
            raise ValueError("replication must be at least 1")
        self.schema = schema
        self.replication = replication

    def recommend(
        self,
        queries: Sequence[Query],
        weights: Optional[Sequence[float]] = None,
    ) -> AdvisorRecommendation:
        """Pick up to ``replication`` attributes maximising weighted workload benefit.

        ``weights`` (default: all 1.0) expresses relative query frequencies, so a workload where
        Bob filters on sourceIP most of the time will dedicate a replica to sourceIP first.
        """
        if weights is None:
            weights = [1.0] * len(queries)
        if len(weights) != len(queries):
            raise ValueError("weights must have one entry per query")

        scores: dict[str, float] = {}
        helped_by: dict[str, list[str]] = {}
        for query, weight in zip(queries, weights):
            if query.predicate is None:
                continue
            selectivity = query.selectivity if query.selectivity is not None else 0.1
            benefit = weight * max(0.0, 1.0 - min(1.0, selectivity))
            for position, clause in enumerate(query.predicate.clauses):
                name = clause.attribute_name(self.schema)
                clause_benefit = benefit if position == 0 else benefit * 0.5
                scores[name] = scores.get(name, 0.0) + clause_benefit
                helped_by.setdefault(name, []).append(query.name)

        ranked = sorted(scores, key=lambda name: (-scores[name], name))
        chosen = tuple(ranked[: self.replication])

        covered: dict[str, tuple[str, ...]] = {}
        for query in queries:
            if query.predicate is None:
                covered[query.name] = ()
                continue
            helpful = tuple(
                clause.attribute_name(self.schema)
                for clause in query.predicate.clauses
                if clause.attribute_name(self.schema) in chosen
            )
            covered[query.name] = helpful

        return AdvisorRecommendation(
            index_attributes=chosen, scores=scores, covered_queries=covered
        )
