"""PAX block layout.

PAX (Partition Attributes Across, Ailamaki et al. 2001) keeps all records of a block inside the
block but stores them column-wise: one "minipage" per attribute.  HAIL converts every block to
PAX on the client during upload (Section 3.1) because a clustered index over one attribute then
needs to touch only that attribute's minipage, and projections read only the requested columns.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterable, Optional, Sequence

from repro.layouts import serialization
from repro.layouts.schema import FieldType, Schema

#: Array typecodes backing the numeric fast path: 64-bit ints and doubles cover every fixed
#: numeric field type exactly (INT/FLOAT values widen losslessly into them).
_TYPED_CODES: dict[FieldType, str] = {
    FieldType.INT: "q",
    FieldType.BIGINT: "q",
    FieldType.FLOAT: "d",
    FieldType.DOUBLE: "d",
}

#: Largest integer magnitude float64 represents exactly (int/float cross-comparison bound).
_EXACT_FLOAT_INT = 2**53


class PaxBlock:
    """A block of records stored column-wise.

    The functional representation keeps each column as a Python list; byte sizes are computed
    from the schema so the cost model can charge realistic I/O volumes without materialising
    hundreds of megabytes.  Numeric columns additionally expose a lazily built typed
    ``array`` view (:meth:`typed_column_at`) whose buffer the kernel fast path wraps with
    ``memoryview``/``numpy.frombuffer`` at zero copy cost.

    Blocks are treated as immutable after construction (reorders build new blocks), which is
    what makes the typed-column cache and the zone-map synopses derived from a block safe to
    reuse.  Internal construction paths that just pivoted or decoded fresh lists pass
    ``copy_columns=False`` to adopt them directly; the defensive copy remains the default for
    external callers handing in lists they may still mutate.
    """

    def __init__(
        self,
        schema: Schema,
        columns: Sequence[list],
        num_rows: int,
        *,
        copy_columns: bool = True,
    ) -> None:
        if len(columns) != len(schema.fields):
            raise ValueError(
                f"expected {len(schema.fields)} columns for schema {schema.name!r}, got {len(columns)}"
            )
        for field, column in zip(schema.fields, columns):
            if len(column) != num_rows:
                raise ValueError(
                    f"column {field.name!r} has {len(column)} values but the block has {num_rows} rows"
                )
        self.schema = schema
        if copy_columns:
            self.columns: list[list] = [list(column) for column in columns]
        else:
            self.columns = [
                column if isinstance(column, list) else list(column) for column in columns
            ]
        self.num_rows = num_rows
        # Lazily built per-column typed views; a cached None marks a column that has no exact
        # typed representation (non-numeric type, or a BIGINT value outside int64).
        self._typed_columns: dict[int, Optional[array]] = {}
        self._int_fits_float: dict[int, bool] = {}

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_records(cls, schema: Schema, records: Sequence[Sequence[Any]]) -> "PaxBlock":
        """Pivot row-wise records into a PAX block."""
        num_fields = len(schema.fields)
        columns: list[list] = [[] for _ in range(num_fields)]
        for record in records:
            if len(record) != num_fields:
                raise ValueError(
                    f"record arity {len(record)} does not match schema {schema.name!r}"
                )
            for i, value in enumerate(record):
                columns[i].append(value)
        return cls(schema, columns, len(records), copy_columns=False)

    @classmethod
    def empty(cls, schema: Schema) -> "PaxBlock":
        """An empty PAX block (used for blocks that contain only bad records)."""
        return cls(schema, [[] for _ in schema.fields], 0, copy_columns=False)

    # ------------------------------------------------------------------ access
    def __len__(self) -> int:
        return self.num_rows

    def column(self, name: str) -> list:
        """The full column (minipage) for attribute ``name``."""
        return self.columns[self.schema.index_of(name)]

    def column_at(self, index: int) -> list:
        """The full column at a 0-based attribute index."""
        return self.columns[index]

    def record(self, row: int) -> tuple:
        """Reconstruct one full record (all attributes) from the columns."""
        if not 0 <= row < self.num_rows:
            raise IndexError(f"row {row} out of range 0..{self.num_rows - 1}")
        return tuple(column[row] for column in self.columns)

    def records(self, rows: Iterable[int] | None = None) -> list[tuple]:
        """Reconstruct several records; all of them when ``rows`` is ``None``."""
        if rows is None:
            rows = range(self.num_rows)
        return [self.record(row) for row in rows]

    def project(self, rows: Iterable[int], attribute_indexes: Sequence[int]) -> list[tuple]:
        """Reconstruct only the projected attributes (0-based indexes) of the given rows."""
        columns = [self.columns[i] for i in attribute_indexes]
        return [tuple(column[row] for column in columns) for row in rows]

    def reorder(self, permutation: Sequence[int]) -> "PaxBlock":
        """Return a new block whose rows follow ``permutation`` (the HAIL sort step)."""
        if len(permutation) != self.num_rows:
            raise ValueError("permutation length must equal the number of rows")
        new_columns = [[column[i] for i in permutation] for column in self.columns]
        return PaxBlock(self.schema, new_columns, self.num_rows, copy_columns=False)

    # ------------------------------------------------------------------ typed column views
    def typed_column_at(self, index: int) -> Optional[array]:
        """A typed ``array`` view of one column, or ``None`` if no exact view exists.

        Numeric columns (INT/BIGINT → ``array('q')``, FLOAT/DOUBLE → ``array('d')``) get a
        packed 64-bit representation whose buffer kernels can wrap zero-copy with
        ``memoryview``/``numpy.frombuffer``.  DATE and STRING columns — and integer columns
        holding a value outside int64 — have no exact packed form and return ``None``, which
        tells the kernel dispatcher to stay on the reference backend.  Views are built once
        per column and cached (blocks are immutable after construction).
        """
        try:
            return self._typed_columns[index]
        except KeyError:
            pass
        typecode = _TYPED_CODES.get(self.schema.fields[index].ftype)
        typed: Optional[array] = None
        if typecode is not None:
            try:
                typed = array(typecode, self.columns[index])
            except (OverflowError, TypeError, ValueError):
                typed = None
        self._typed_columns[index] = typed
        return typed

    def int_column_fits_float(self, index: int) -> bool:
        """True when every value of an integer column is exactly representable as float64.

        Kernels comparing an int64 column against a float operand promote the column to
        float64; the promotion is only exact below 2**53, so this bound gates that path.
        """
        try:
            return self._int_fits_float[index]
        except KeyError:
            pass
        typed = self.typed_column_at(index)
        if typed is None or typed.typecode != "q" or len(typed) == 0:
            fits = typed is not None and typed.typecode == "q"
        else:
            fits = -_EXACT_FLOAT_INT <= min(typed) and max(typed) <= _EXACT_FLOAT_INT
        self._int_fits_float[index] = fits
        return fits

    # ------------------------------------------------------------------ size accounting
    def column_size_bytes(self, name: str) -> int:
        """Binary size of one column's minipage."""
        field = self.schema.field(name)
        column = self.column(name)
        fixed = field.ftype.fixed_size
        if fixed is not None:
            return fixed * self.num_rows
        return sum(field.binary_size(value) for value in column)

    def size_bytes(self) -> int:
        """Binary size of all minipages (the PAX payload of the block)."""
        return sum(self.column_size_bytes(field.name) for field in self.schema.fields)

    def projected_size_bytes(self, attribute_names: Sequence[str]) -> int:
        """Binary size of just the named columns (what a projection must read)."""
        return sum(self.column_size_bytes(name) for name in attribute_names)

    # ------------------------------------------------------------------ serialization
    def to_bytes(self) -> bytes:
        """Serialize all minipages (column after column) to bytes.

        Used by serialization round-trip tests; the simulators normally keep blocks as Python
        objects and only account their sizes.
        """
        parts = []
        for field, column in zip(self.schema.fields, self.columns):
            parts.append(serialization.encode_column(field, column))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, schema: Schema, payload: bytes, num_rows: int) -> "PaxBlock":
        """Deserialize a block written by :meth:`to_bytes`."""
        columns: list[list] = []
        offset = 0
        for field in schema.fields:
            column = []
            for _ in range(num_rows):
                value, offset = serialization.decode_value(field, payload, offset)
                column.append(value)
            columns.append(column)
        return cls(schema, columns, num_rows, copy_columns=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PaxBlock(schema={self.schema.name!r}, rows={self.num_rows})"
