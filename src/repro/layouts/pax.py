"""PAX block layout.

PAX (Partition Attributes Across, Ailamaki et al. 2001) keeps all records of a block inside the
block but stores them column-wise: one "minipage" per attribute.  HAIL converts every block to
PAX on the client during upload (Section 3.1) because a clustered index over one attribute then
needs to touch only that attribute's minipage, and projections read only the requested columns.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.layouts import serialization
from repro.layouts.schema import Schema


class PaxBlock:
    """A block of records stored column-wise.

    The functional representation keeps each column as a Python list; byte sizes are computed
    from the schema so the cost model can charge realistic I/O volumes without materialising
    hundreds of megabytes.
    """

    def __init__(self, schema: Schema, columns: Sequence[list], num_rows: int) -> None:
        if len(columns) != len(schema.fields):
            raise ValueError(
                f"expected {len(schema.fields)} columns for schema {schema.name!r}, got {len(columns)}"
            )
        for field, column in zip(schema.fields, columns):
            if len(column) != num_rows:
                raise ValueError(
                    f"column {field.name!r} has {len(column)} values but the block has {num_rows} rows"
                )
        self.schema = schema
        self.columns: list[list] = [list(column) for column in columns]
        self.num_rows = num_rows

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_records(cls, schema: Schema, records: Sequence[Sequence[Any]]) -> "PaxBlock":
        """Pivot row-wise records into a PAX block."""
        num_fields = len(schema.fields)
        columns: list[list] = [[] for _ in range(num_fields)]
        for record in records:
            if len(record) != num_fields:
                raise ValueError(
                    f"record arity {len(record)} does not match schema {schema.name!r}"
                )
            for i, value in enumerate(record):
                columns[i].append(value)
        return cls(schema, columns, len(records))

    @classmethod
    def empty(cls, schema: Schema) -> "PaxBlock":
        """An empty PAX block (used for blocks that contain only bad records)."""
        return cls(schema, [[] for _ in schema.fields], 0)

    # ------------------------------------------------------------------ access
    def __len__(self) -> int:
        return self.num_rows

    def column(self, name: str) -> list:
        """The full column (minipage) for attribute ``name``."""
        return self.columns[self.schema.index_of(name)]

    def column_at(self, index: int) -> list:
        """The full column at a 0-based attribute index."""
        return self.columns[index]

    def record(self, row: int) -> tuple:
        """Reconstruct one full record (all attributes) from the columns."""
        if not 0 <= row < self.num_rows:
            raise IndexError(f"row {row} out of range 0..{self.num_rows - 1}")
        return tuple(column[row] for column in self.columns)

    def records(self, rows: Iterable[int] | None = None) -> list[tuple]:
        """Reconstruct several records; all of them when ``rows`` is ``None``."""
        if rows is None:
            rows = range(self.num_rows)
        return [self.record(row) for row in rows]

    def project(self, rows: Iterable[int], attribute_indexes: Sequence[int]) -> list[tuple]:
        """Reconstruct only the projected attributes (0-based indexes) of the given rows."""
        columns = [self.columns[i] for i in attribute_indexes]
        return [tuple(column[row] for column in columns) for row in rows]

    def reorder(self, permutation: Sequence[int]) -> "PaxBlock":
        """Return a new block whose rows follow ``permutation`` (the HAIL sort step)."""
        if len(permutation) != self.num_rows:
            raise ValueError("permutation length must equal the number of rows")
        new_columns = [[column[i] for i in permutation] for column in self.columns]
        return PaxBlock(self.schema, new_columns, self.num_rows)

    # ------------------------------------------------------------------ size accounting
    def column_size_bytes(self, name: str) -> int:
        """Binary size of one column's minipage."""
        field = self.schema.field(name)
        column = self.column(name)
        fixed = field.ftype.fixed_size
        if fixed is not None:
            return fixed * self.num_rows
        return sum(field.binary_size(value) for value in column)

    def size_bytes(self) -> int:
        """Binary size of all minipages (the PAX payload of the block)."""
        return sum(self.column_size_bytes(field.name) for field in self.schema.fields)

    def projected_size_bytes(self, attribute_names: Sequence[str]) -> int:
        """Binary size of just the named columns (what a projection must read)."""
        return sum(self.column_size_bytes(name) for name in attribute_names)

    # ------------------------------------------------------------------ serialization
    def to_bytes(self) -> bytes:
        """Serialize all minipages (column after column) to bytes.

        Used by serialization round-trip tests; the simulators normally keep blocks as Python
        objects and only account their sizes.
        """
        parts = []
        for field, column in zip(self.schema.fields, self.columns):
            parts.append(serialization.encode_column(field, column))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, schema: Schema, payload: bytes, num_rows: int) -> "PaxBlock":
        """Deserialize a block written by :meth:`to_bytes`."""
        columns: list[list] = []
        offset = 0
        for field in schema.fields:
            column = []
            for _ in range(num_rows):
                value, offset = serialization.decode_value(field, payload, offset)
                column.append(value)
            columns.append(column)
        return cls(schema, columns, num_rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PaxBlock(schema={self.schema.name!r}, rows={self.num_rows})"
