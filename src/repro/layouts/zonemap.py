"""Zone maps: per-block and per-partition min-max synopses for data skipping.

A zone map records, for every attribute of a PAX block, the minimum and maximum value stored
— once at block granularity and once per index partition.  A selection clause whose value
range is provably disjoint from a zone cannot match any row inside it, so

- the **planner** consults the block-level ranges registered in ``Dir_rep``
  (``HailBlockReplicaInfo.zone_ranges``) to skip whole blocks before any payload is opened
  (the ``ZONE_MAP_SKIP`` access path), and
- the **executor** consults the payload's own per-partition zone map to prune the candidate
  window down to the partitions that may match.

Correctness is fail-closed throughout: a zone map can only ever *widen* the set of rows read,
never narrow the result.  Any doubt — unknown attribute, uncomparable operand types, a
synopsis whose row count disagrees with the payload — disables skipping for that block and
the scan proceeds in full.  The executor additionally re-verifies every planner-ordered skip
against the payload's own (freshly derivable) synopsis, so a stale ``Dir_rep`` entry degrades
to a full scan rather than a wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional, Sequence

if TYPE_CHECKING:
    from repro.hail.predicate import Comparison, Predicate
    from repro.layouts.pax import PaxBlock
    from repro.layouts.schema import Schema

#: ``Dir_rep`` zone ranges: one ``(attribute, min, max)`` triple per attribute with data.
ZoneRanges = tuple[tuple[str, Any, Any], ...]


def block_zone_ranges(pax: "PaxBlock") -> ZoneRanges:
    """Block-level min/max per attribute, in the ``Dir_rep`` triple form.

    This is the cheap synopsis registered with the namenode at replica-creation time (upload,
    adaptive build commit, eviction downgrade, balancer re-replication): two ``min``/``max``
    passes per column, no per-partition breakdown.  Empty blocks yield an empty tuple.
    """
    if pax.num_rows == 0:
        return ()
    return tuple(
        (field.name, min(column), max(column))
        for field, column in zip(pax.schema.fields, pax.columns)
    )


def ranges_disjoint(
    clause_low: Any, clause_high: Any, zone_low: Any, zone_high: Any
) -> bool:
    """True when a clause value range provably cannot intersect a zone's ``[low, high]``.

    Both ranges are treated as closed: ``Comparison.value_range`` does not distinguish strict
    from inclusive bounds, so a clause bound exactly on the zone edge is conservatively
    treated as a possible match (never skipped).  Uncomparable types fail closed to "may
    intersect".
    """
    try:
        if clause_high is not None and clause_high < zone_low:
            return True
        if clause_low is not None and clause_low > zone_high:
            return True
    except TypeError:
        return False
    return False


def may_match_ranges(
    ranges: Optional[ZoneRanges], predicate: Optional["Predicate"], schema: "Schema"
) -> bool:
    """Whether a block with ``Dir_rep`` zone ``ranges`` may hold rows matching ``predicate``.

    ``True`` (may match → must scan) is the fail-closed default: missing synopsis, missing
    predicate, or an attribute the synopsis does not cover all answer ``True``.  Only a
    clause whose value range is provably disjoint from the recorded zone justifies a skip.
    """
    if not ranges or predicate is None:
        return True
    zones = {name: (low, high) for name, low, high in ranges}
    for clause in predicate.clauses:
        try:
            name = schema.fields[clause.attribute_index(schema)].name
        except (KeyError, IndexError):
            return True
        zone = zones.get(name)
        if zone is None:
            return True
        clause_low, clause_high = clause.value_range()
        if ranges_disjoint(clause_low, clause_high, zone[0], zone[1]):
            return False
    return True


@dataclass(frozen=True)
class ZoneMap:
    """Per-partition min-max synopsis of one PAX block payload.

    Built lazily from the payload itself (``HailBlock.zone_map``), so it is consistent with
    the data by construction; :meth:`matches` is the staleness guard executors check before
    trusting it (a payload mutated after the synopsis was built fails the row-count check and
    the scan falls back to reading everything).
    """

    #: Number of rows the synopsis was built over (staleness guard).
    num_rows: int
    #: Partition width in rows the per-partition zones are aligned to.
    partition_size: int
    #: Block-level ``attribute -> (min, max)``.
    block_zones: dict[str, tuple[Any, Any]]
    #: Per-partition ``attribute -> ((min, max), ...)``, one pair per partition.
    partition_zones: dict[str, tuple[tuple[Any, Any], ...]]

    @classmethod
    def build(cls, pax: "PaxBlock", partition_size: int) -> "ZoneMap":
        """Compute the synopsis of ``pax`` at ``partition_size``-row granularity."""
        if partition_size <= 0:
            raise ValueError("partition_size must be positive")
        block_zones: dict[str, tuple[Any, Any]] = {}
        partition_zones: dict[str, tuple[tuple[Any, Any], ...]] = {}
        if pax.num_rows:
            for field, column in zip(pax.schema.fields, pax.columns):
                block_zones[field.name] = (min(column), max(column))
                partition_zones[field.name] = tuple(
                    (min(window), max(window))
                    for window in (
                        column[start : start + partition_size]
                        for start in range(0, pax.num_rows, partition_size)
                    )
                )
        return cls(
            num_rows=pax.num_rows,
            partition_size=partition_size,
            block_zones=block_zones,
            partition_zones=partition_zones,
        )

    def matches(self, num_rows: int) -> bool:
        """Staleness guard: is this synopsis sized for a payload of ``num_rows`` rows?"""
        return self.num_rows == num_rows

    def num_partitions(self) -> int:
        """Number of partitions the synopsis covers."""
        if self.num_rows == 0:
            return 0
        return (self.num_rows + self.partition_size - 1) // self.partition_size

    # ------------------------------------------------------------------ block-level checks
    def block_ranges(self) -> ZoneRanges:
        """The block-level synopsis in the ``Dir_rep`` triple form."""
        return tuple((name, low, high) for name, (low, high) in self.block_zones.items())

    def may_match(self, predicate: Optional["Predicate"], schema: "Schema") -> bool:
        """Whether any row of the block may satisfy ``predicate`` (block-level zones only)."""
        return may_match_ranges(self.block_ranges(), predicate, schema)

    # ------------------------------------------------------------------ partition pruning
    def _clause_may_match_partition(
        self, clause: "Comparison", schema: "Schema", partition: int
    ) -> bool:
        """Fail-closed per-partition test for one clause."""
        try:
            name = schema.fields[clause.attribute_index(schema)].name
        except (KeyError, IndexError):
            return True
        zones = self.partition_zones.get(name)
        if zones is None or partition >= len(zones):
            return True
        low, high = clause.value_range()
        zone_low, zone_high = zones[partition]
        return not ranges_disjoint(low, high, zone_low, zone_high)

    def prune_ranges(
        self, predicate: Optional["Predicate"], schema: "Schema", start: int, end: int
    ) -> list[tuple[int, int]]:
        """Row windows within ``[start, end)`` whose partitions may match ``predicate``.

        Partitions where any clause is provably disjoint from the zone are dropped; the
        surviving partitions are clipped to the candidate window and merged into maximal
        contiguous row ranges (so downstream kernels see few, wide windows).  With no
        predicate — or no prunable partition — the single original window comes back.
        """
        if start >= end:
            return []
        if predicate is None or not self.partition_zones:
            return [(start, end)]
        size = self.partition_size
        windows: list[tuple[int, int]] = []
        first = start // size
        last = (end - 1) // size
        for partition in range(first, last + 1):
            if not all(
                self._clause_may_match_partition(clause, schema, partition)
                for clause in predicate.clauses
            ):
                continue
            window_start = max(start, partition * size)
            window_end = min(end, (partition + 1) * size)
            if windows and windows[-1][1] == window_start:
                windows[-1] = (windows[-1][0], window_end)
            else:
                windows.append((window_start, window_end))
        return windows


def pruned_row_count(windows: Sequence[tuple[int, int]], start: int, end: int) -> int:
    """Rows of the original ``[start, end)`` window that pruning removed."""
    kept = sum(window_end - window_start for window_start, window_end in windows)
    return max(0, (end - start) - kept)
