"""Record schemas.

The HAIL client parses every uploaded row according to a user-specified schema (Section 3.1).
Rows that do not match the schema ("bad records") are separated into a special part of the data
block and handed to the map function unchanged at query time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from datetime import date
from typing import Any, Iterable, Sequence


class BadRecordError(ValueError):
    """Raised when a text row cannot be parsed according to the schema."""


class FieldType(enum.Enum):
    """Supported attribute types and their fixed binary widths (None = variable size)."""

    INT = "int"
    BIGINT = "bigint"
    FLOAT = "float"
    DOUBLE = "double"
    DATE = "date"
    STRING = "string"

    @property
    def fixed_size(self) -> int | None:
        """Binary width in bytes, or ``None`` for variable-size types."""
        return _FIXED_SIZES[self]

    @property
    def is_fixed(self) -> bool:
        """True for fixed-width types."""
        return self.fixed_size is not None


_FIXED_SIZES: dict[FieldType, int | None] = {
    FieldType.INT: 4,
    FieldType.BIGINT: 8,
    FieldType.FLOAT: 4,
    FieldType.DOUBLE: 8,
    FieldType.DATE: 4,
    FieldType.STRING: None,
}


@dataclass(frozen=True)
class Field:
    """One attribute of a schema."""

    name: str
    ftype: FieldType

    def parse(self, token: str) -> Any:
        """Parse one text token into a typed Python value.

        Raises
        ------
        BadRecordError
            If the token cannot be converted to the field's type.
        """
        try:
            if self.ftype in (FieldType.INT, FieldType.BIGINT):
                return int(token)
            if self.ftype in (FieldType.FLOAT, FieldType.DOUBLE):
                return float(token)
            if self.ftype == FieldType.DATE:
                return _parse_date(token)
            return token
        except (ValueError, TypeError) as exc:
            raise BadRecordError(
                f"cannot parse {token!r} as {self.ftype.value} for field {self.name!r}"
            ) from exc

    def format(self, value: Any) -> str:
        """Format a typed value back to its text token."""
        if self.ftype == FieldType.DATE:
            if isinstance(value, date):
                return value.isoformat()
            return str(value)
        if self.ftype in (FieldType.FLOAT, FieldType.DOUBLE):
            # repr round-trips exactly, so text-uploaded and binary-uploaded replicas agree.
            return repr(float(value))
        return str(value)

    def binary_size(self, value: Any) -> int:
        """Binary size of ``value`` in this field (strings: bytes + terminating zero)."""
        fixed = self.ftype.fixed_size
        if fixed is not None:
            return fixed
        return len(str(value).encode("utf-8")) + 1


def _parse_date(token: str) -> date:
    """Parse ``YYYY-MM-DD`` into a :class:`datetime.date`."""
    parts = token.split("-")
    if len(parts) != 3:
        raise ValueError(f"not an ISO date: {token!r}")
    year, month, day = (int(part) for part in parts)
    return date(year, month, day)


class Schema:
    """An ordered list of fields plus parsing/formatting helpers.

    Attribute positions are 1-based in the paper's ``@HailQuery`` annotations (``@1`` is the
    first attribute); this class exposes both 0-based indexing (:meth:`index_of`) and the
    1-based convention (:meth:`position_of`, :meth:`field_at_position`).
    """

    def __init__(self, fields: Sequence[Field], name: str = "schema", delimiter: str = "|") -> None:
        if not fields:
            raise ValueError("a schema needs at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in schema: {names}")
        self.name = name
        self.fields: tuple[Field, ...] = tuple(fields)
        self.delimiter = delimiter
        self._index = {f.name: i for i, f in enumerate(self.fields)}

    # ------------------------------------------------------------------ construction helpers
    @classmethod
    def of(cls, *specs: tuple[str, FieldType], name: str = "schema", delimiter: str = "|") -> "Schema":
        """Build a schema from ``(name, type)`` pairs."""
        return cls([Field(n, t) for n, t in specs], name=name, delimiter=delimiter)

    # ------------------------------------------------------------------ lookup
    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    @property
    def field_names(self) -> list[str]:
        """Names of all fields, in order."""
        return [f.name for f in self.fields]

    def field(self, name: str) -> Field:
        """Field by name. Raises ``KeyError`` for unknown names."""
        return self.fields[self.index_of(name)]

    def index_of(self, name: str) -> int:
        """0-based position of a field by name."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"schema {self.name!r} has no field {name!r}; fields: {self.field_names}") from None

    def position_of(self, name: str) -> int:
        """1-based attribute position as used by ``@HailQuery`` annotations."""
        return self.index_of(name) + 1

    def field_at_position(self, position: int) -> Field:
        """Field at a 1-based attribute position."""
        if not 1 <= position <= len(self.fields):
            raise IndexError(f"attribute position @{position} out of range 1..{len(self.fields)}")
        return self.fields[position - 1]

    def has_field(self, name: str) -> bool:
        """True if a field with ``name`` exists."""
        return name in self._index

    # ------------------------------------------------------------------ parsing / formatting
    def parse_line(self, line: str) -> tuple:
        """Parse one text row into a tuple of typed values.

        Raises
        ------
        BadRecordError
            If the row has the wrong number of attributes or a token fails type conversion.
        """
        tokens = line.rstrip("\n").split(self.delimiter)
        if len(tokens) != len(self.fields):
            raise BadRecordError(
                f"expected {len(self.fields)} attributes, found {len(tokens)}: {line!r}"
            )
        return tuple(f.parse(token) for f, token in zip(self.fields, tokens))

    def format_record(self, record: Sequence[Any]) -> str:
        """Format a typed record back into its text-row representation."""
        if len(record) != len(self.fields):
            raise ValueError(
                f"record has {len(record)} values but schema {self.name!r} has {len(self.fields)} fields"
            )
        return self.delimiter.join(f.format(value) for f, value in zip(self.fields, record))

    def validate(self, record: Sequence[Any]) -> bool:
        """Light-weight structural validation: arity only (types are trusted)."""
        return len(record) == len(self.fields)

    # ------------------------------------------------------------------ size accounting
    def text_size(self, record: Sequence[Any]) -> int:
        """Bytes of the text-row representation (including the newline)."""
        return len(self.format_record(record).encode("utf-8")) + 1

    def binary_size(self, record: Sequence[Any]) -> int:
        """Bytes of the binary representation of one record."""
        return sum(f.binary_size(value) for f, value in zip(self.fields, record))

    @property
    def fixed_binary_size(self) -> int:
        """Bytes contributed by the fixed-size fields of one record."""
        return sum(f.ftype.fixed_size or 0 for f in self.fields)

    @property
    def has_variable_fields(self) -> bool:
        """True if any field has a variable-size type."""
        return any(not f.ftype.is_fixed for f in self.fields)

    def string_byte_fraction(self, records: Iterable[Sequence[Any]]) -> float:
        """Fraction of the text bytes that belongs to string (variable-size) fields.

        Used by the cost model to split parsing work between the expensive string path and the
        cheaper numeric-conversion path; computed over a sample of records.
        """
        string_bytes = 0
        total_bytes = 0
        for record in records:
            for f, value in zip(self.fields, record):
                token_bytes = len(f.format(value).encode("utf-8")) + 1
                total_bytes += token_bytes
                if not f.ftype.is_fixed:
                    string_bytes += token_bytes
        if total_bytes == 0:
            return 0.0
        return string_bytes / total_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{f.name}:{f.ftype.value}" for f in self.fields)
        return f"Schema({self.name!r}, [{cols}])"
