"""Row-oriented layouts: the text layout of stock HDFS uploads and a binary row layout.

Stock Hadoop stores uploaded files verbatim as text; its RecordReader later splits lines and
attributes at query time.  Hadoop++ converts blocks to a binary *row* layout during its index
creation job.  HAIL uses the PAX layout in :mod:`repro.layouts.pax` instead.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.layouts import serialization
from repro.layouts.schema import BadRecordError, Schema


class TextRowCodec:
    """Encode/decode records as delimiter-separated text lines."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema

    def encode(self, records: Iterable[Sequence]) -> str:
        """Format records as newline-separated text (the payload of a stock HDFS block)."""
        return "\n".join(self.schema.format_record(record) for record in records)

    def encode_lines(self, records: Iterable[Sequence]) -> list[str]:
        """Format records as a list of text lines."""
        return [self.schema.format_record(record) for record in records]

    def decode(self, text: str) -> list[tuple]:
        """Parse newline-separated text into typed records; bad rows raise.

        Records are delimited by ``\\n`` only, matching Hadoop's TextInputFormat (other Unicode
        line separators are ordinary characters inside a field).
        """
        return [self.schema.parse_line(line) for line in text.split("\n") if line]

    def decode_lenient(self, text: str) -> tuple[list[tuple], list[str]]:
        """Parse text, separating parseable records from bad records.

        Returns ``(records, bad_lines)`` — the split HAIL performs at upload time.
        """
        records: list[tuple] = []
        bad: list[str] = []
        for line in text.split("\n"):
            if not line:
                continue
            try:
                records.append(self.schema.parse_line(line))
            except BadRecordError:
                bad.append(line)
        return records, bad

    def size_bytes(self, records: Iterable[Sequence]) -> int:
        """Total text size (bytes, including newlines) of the given records."""
        return sum(self.schema.text_size(record) for record in records)


class BinaryRowCodec:
    """Encode/decode records in a packed binary row layout (used by the Hadoop++ baseline)."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema

    def encode(self, records: Iterable[Sequence]) -> bytes:
        """Concatenate the binary encodings of all records."""
        return b"".join(serialization.encode_record(self.schema, record) for record in records)

    def decode(self, payload: bytes, count: int | None = None) -> list[tuple]:
        """Decode records until ``count`` records were read or the payload is exhausted."""
        records: list[tuple] = []
        offset = 0
        while offset < len(payload):
            if count is not None and len(records) >= count:
                break
            record, offset = serialization.decode_record(self.schema, payload, offset)
            records.append(record)
        return records

    def size_bytes(self, records: Iterable[Sequence]) -> int:
        """Total binary size of the given records."""
        return sum(self.schema.binary_size(record) for record in records)
