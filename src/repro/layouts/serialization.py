"""Binary value serialization for blocks.

The HAIL client converts text rows to a binary representation before upload.  These helpers
implement the value-level encoding: fixed-size types use native ``struct`` packing, variable
size values (strings) are stored zero-terminated, exactly as described in Section 3.5
("we store variable-sized attributes as a sequence of zero-terminated values").
"""

from __future__ import annotations

import struct
from datetime import date
from typing import Any, Iterable, Sequence

from repro.layouts.schema import Field, FieldType, Schema

_EPOCH = date(1970, 1, 1)

_STRUCT_FORMATS: dict[FieldType, str] = {
    FieldType.INT: "<i",
    FieldType.BIGINT: "<q",
    FieldType.FLOAT: "<f",
    FieldType.DOUBLE: "<d",
    FieldType.DATE: "<i",
}


def encode_value(field: Field, value: Any) -> bytes:
    """Encode one typed value as bytes according to its field type."""
    ftype = field.ftype
    if ftype == FieldType.STRING:
        return str(value).encode("utf-8") + b"\x00"
    if ftype == FieldType.DATE:
        value = date_to_days(value)
    try:
        return struct.pack(_STRUCT_FORMATS[ftype], value)
    except struct.error as exc:
        raise ValueError(f"cannot encode {value!r} for field {field.name!r} ({ftype.value})") from exc


def decode_value(field: Field, payload: bytes, offset: int = 0) -> tuple[Any, int]:
    """Decode one value from ``payload`` starting at ``offset``.

    Returns the decoded value and the offset just past it.
    """
    ftype = field.ftype
    if ftype == FieldType.STRING:
        end = payload.index(b"\x00", offset)
        return payload[offset:end].decode("utf-8"), end + 1
    fmt = _STRUCT_FORMATS[ftype]
    size = struct.calcsize(fmt)
    (raw,) = struct.unpack_from(fmt, payload, offset)
    if ftype == FieldType.DATE:
        return days_to_date(raw), offset + size
    return raw, offset + size


def encode_record(schema: Schema, record: Sequence[Any]) -> bytes:
    """Encode one record as a concatenation of its encoded values (binary row layout)."""
    if len(record) != len(schema.fields):
        raise ValueError(
            f"record arity {len(record)} does not match schema {schema.name!r} ({len(schema.fields)})"
        )
    return b"".join(encode_value(f, v) for f, v in zip(schema.fields, record))


def decode_record(schema: Schema, payload: bytes, offset: int = 0) -> tuple[tuple, int]:
    """Decode one record from ``payload`` starting at ``offset``."""
    values = []
    for field in schema.fields:
        value, offset = decode_value(field, payload, offset)
        values.append(value)
    return tuple(values), offset


def encode_column(field: Field, values: Iterable[Any]) -> bytes:
    """Encode a whole column (used by the PAX minipage serialization)."""
    return b"".join(encode_value(field, v) for v in values)


def decode_column(field: Field, payload: bytes, count: int) -> list[Any]:
    """Decode ``count`` values of one column from ``payload``."""
    values = []
    offset = 0
    for _ in range(count):
        value, offset = decode_value(field, payload, offset)
        values.append(value)
    return values


def date_to_days(value: Any) -> int:
    """Convert a date (or pre-converted int) to days since the Unix epoch."""
    if isinstance(value, date):
        return (value - _EPOCH).days
    return int(value)


def days_to_date(days: int) -> date:
    """Convert days since the Unix epoch back to a :class:`datetime.date`."""
    return date.fromordinal(_EPOCH.toordinal() + int(days))


def variable_offsets(field: Field, values: Sequence[Any], partition_size: int) -> list[int]:
    """Offsets of every ``partition_size``-th value within an encoded variable-size column.

    HAIL stores one offset per logical index partition for variable-size attributes so that a
    qualifying partition can be located without scanning the whole column (Section 3.5,
    "Accessing Variable-size Attributes").
    """
    if partition_size <= 0:
        raise ValueError("partition_size must be positive")
    offsets: list[int] = []
    position = 0
    for i, value in enumerate(values):
        if i % partition_size == 0:
            offsets.append(position)
        position += field.binary_size(value)
    return offsets
