"""Record schemas and physical data layouts (text row, binary row, PAX).

HAIL converts each HDFS block from the uploaded text representation to a binary PAX layout
(Ailamaki et al., VLDB 2001) on the client, before the block enters the upload pipeline.  This
package provides the schema machinery, the codecs for the row representations and the PAX block
used by HAIL and by the Trojan-index baseline.
"""

from repro.layouts.schema import Field, FieldType, Schema, BadRecordError
from repro.layouts.row import TextRowCodec, BinaryRowCodec
from repro.layouts.pax import PaxBlock
from repro.layouts.zonemap import ZoneMap, block_zone_ranges
from repro.layouts import serialization

__all__ = [
    "Field",
    "FieldType",
    "Schema",
    "BadRecordError",
    "TextRowCodec",
    "BinaryRowCodec",
    "PaxBlock",
    "ZoneMap",
    "block_zone_ranges",
    "serialization",
]
