#!/usr/bin/env python3
"""Validate an emitted ``BENCH_*.json`` perf record against the pinned schema and floors.

Runs in CI right after the benchmark smoke steps (stdlib only, no third-party dependencies).
Records dispatch on their ``kind`` field:

- **engine** (the default, BENCH_6): the record must carry the three workloads with
  per-variant timings, every timed variant must have answered identically to the legacy
  baseline, the skip workload must report its skip-rate/pruned-bytes stats, and the headline
  ``combined_speedup`` (kernels + zone-map skipping vs. the legacy mask pipeline, on
  whatever backend the environment offers) must clear the acceptance floor.
- **saturation** (BENCH_7): the multi-tenant concurrency sweep must start from a serial
  baseline level, every level must answer bit-identically to it, at least one concurrent
  level must show **both** tenants' jobs genuinely interleaving, and the best batch speedup
  over serial must clear its floor.
- **recovery** (BENCH_8): the crash-recovery curve must restore bit-identically — the
  post-restore probe runtime equals the warm steady state, the learned index pool
  (adaptive replicas and zone synopses) survives the kill, every phase answers
  identically — and the time-to-first-answer speedup over a persistence-off cold
  restart must clear its floor.
- **operators** (BENCH_9): the relational-operator record must show the map-side
  combiner cutting shuffled pairs by its floor, the planner choosing the shuffle-free
  merge join on co-partitioned sides without costing more than the hash fallback, and
  ranked top-k opening under half the file's blocks — all bit-identical to brute force.
- **chaos** (BENCH_10): the concurrency-stress record must show speculation beating
  the speculation-off straggler makespan by its floor, p99 latency under injected node
  death within its ceiling of the failure-free p99, at least one preemption kill with
  every tenant's peak running attempts inside the slot quota, and every fault scenario
  answering bit-identically to the failure-free run.

Usage::

    python tools/check_bench.py BENCH_6.json
    python tools/check_bench.py --min-speedup 2.0 BENCH_6.json
    python tools/check_bench.py BENCH_7.json
    python tools/check_bench.py BENCH_8.json
    python tools/check_bench.py BENCH_9.json
    python tools/check_bench.py BENCH_10.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

#: The acceptance floor: kernels + skipping combined vs. the legacy pipeline.
MIN_COMBINED_SPEEDUP = 2.0

#: The saturation floor: best concurrent makespan vs. the serial baseline's.
MIN_SATURATION_SPEEDUP = 1.5

#: The recovery floor: cold-restart time to first answer vs. the restored deployment's.
MIN_RECOVERY_SPEEDUP = 2.0

#: The operators floor: shuffled pairs without the map-side combiner vs. with it.
MIN_COMBINER_REDUCTION = 2.0

#: The operators ceiling: fraction of a file's blocks ranked top-k may open.
MAX_TOPK_READ_FRACTION = 0.5

#: The chaos floor: speculation-off straggler makespan vs. speculation-on.
MIN_SPEC_SPEEDUP = 1.3

#: The chaos ceiling: p99 latency under injected node death vs. failure-free p99.
MAX_CHAOS_P99_RATIO = 2.0

#: Fault scenarios every chaos record must contain.
REQUIRED_CHAOS_SCENARIOS = (
    "failure_free",
    "straggler",
    "straggler_speculation",
    "node_death",
    "preemption",
)

#: Workloads every engine record must contain.
REQUIRED_WORKLOADS = ("filter_micro", "skip_micro", "figure_workload")


def _check_variants(errors: list[str], workload: str, entry: dict) -> None:
    variants = entry.get("variants")
    if not isinstance(variants, dict) or len(variants) < 2:
        errors.append(f"{workload}: expected a 'variants' dict with a baseline and a kernel")
        return
    for name, variant in variants.items():
        seconds = variant.get("seconds")
        if not isinstance(seconds, (int, float)) or seconds <= 0:
            errors.append(f"{workload}/{name}: 'seconds' must be a positive number")
        speedup = variant.get("speedup")
        if not isinstance(speedup, (int, float)) or speedup <= 0:
            errors.append(f"{workload}/{name}: 'speedup' must be a positive number")
        if variant.get("results_identical") is not True:
            errors.append(
                f"{workload}/{name}: results_identical must be true — a speedup that "
                "changes the answer is a bug, not a win"
            )


def _check_saturation(record: dict, min_speedup: float) -> list[str]:
    """Violations of a ``kind: saturation`` record (the BENCH_7 concurrency sweep)."""
    errors: list[str] = []
    tenants = record.get("tenants")
    if not (isinstance(tenants, int) and tenants >= 2):
        errors.append("'tenants' must be an integer >= 2 — one tenant is not multi-tenancy")
    levels = record.get("levels")
    if not (isinstance(levels, list) and len(levels) >= 2):
        return errors + ["'levels' must be a list with a serial baseline and >=1 sweep point"]
    if levels[0].get("max_concurrent_jobs") != 1:
        errors.append("levels[0] must be the serial baseline (max_concurrent_jobs == 1)")
    saturated = False
    for i, level in enumerate(levels):
        label = f"levels[{i}]"
        for key in ("throughput_qps", "latency_p50_s", "latency_p99_s", "makespan_s"):
            value = level.get(key)
            if not (isinstance(value, (int, float)) and value > 0):
                errors.append(f"{label}: {key!r} must be a positive number")
        if level.get("results_identical") is not True:
            errors.append(
                f"{label}: results_identical must be true — interleaving that changes "
                "answers is a bug, not concurrency"
            )
        p50, p99 = level.get("latency_p50_s"), level.get("latency_p99_s")
        if isinstance(p50, (int, float)) and isinstance(p99, (int, float)) and p99 < p50:
            errors.append(f"{label}: latency_p99_s below latency_p50_s")
        if (
            level.get("max_concurrent_jobs", 1) > 1
            and level.get("interleaved_jobs", 0) > 0
            and level.get("tenants_interleaved", 0) >= 2
        ):
            saturated = True
    if not saturated:
        errors.append(
            "no concurrent level shows >=2 tenants with genuinely interleaved jobs — "
            "the sweep degenerated to serial execution"
        )
    best = record.get("best_speedup_vs_serial")
    if not isinstance(best, (int, float)):
        errors.append("'best_speedup_vs_serial' must be a number")
    elif best < min_speedup:
        errors.append(
            f"best_speedup_vs_serial {best:.2f}x is below the {min_speedup:.1f}x floor"
        )
    return errors


def _check_recovery(record: dict, min_speedup: float) -> list[str]:
    """Violations of a ``kind: recovery`` record (the BENCH_8 crash-recovery curve)."""
    errors: list[str] = []
    for key in ("warm_steady_runtime_s", "restored_runtime_s", "cold_restart_runtime_s"):
        value = record.get(key)
        if not (isinstance(value, (int, float)) and value > 0):
            errors.append(f"{key!r} must be a positive number")
    if record.get("runtime_bit_identical") is not True:
        errors.append(
            "runtime_bit_identical must be true — the restored probe must cost exactly "
            "the warm steady state, or the journal lost part of the learned index pool"
        )
    if record.get("results_identical") is not True:
        errors.append(
            "results_identical must be true — a restore that changes answers is "
            "corruption, not recovery"
        )
    if record.get("counts_match") is not True:
        errors.append(
            "counts_match must be true — the adaptive-replica and zone-synopsis counts "
            "must survive the kill exactly"
        )
    restored = record.get("adaptive_replicas_restored")
    if not (isinstance(restored, int) and restored > 0):
        errors.append(
            "'adaptive_replicas_restored' must be a positive integer — restoring an "
            "empty index pool proves nothing"
        )
    speedup = record.get("recovery_speedup")
    if not isinstance(speedup, (int, float)):
        errors.append("'recovery_speedup' must be a number")
    elif speedup < min_speedup:
        errors.append(
            f"recovery_speedup {speedup:.2f}x is below the {min_speedup:.1f}x floor"
        )
    return errors


def _check_operators(record: dict, min_reduction: float) -> list[str]:
    """Violations of a ``kind: operators`` record (the BENCH_9 relational-operator curve)."""
    errors: list[str] = []
    combiner = record.get("combiner")
    if not isinstance(combiner, dict):
        errors.append("'combiner' must be an object")
    else:
        reduction = combiner.get("pair_reduction")
        if not isinstance(reduction, (int, float)):
            errors.append("combiner: 'pair_reduction' must be a number")
        elif reduction < min_reduction:
            errors.append(
                f"combiner pair_reduction {reduction:.2f}x is below the "
                f"{min_reduction:.1f}x floor"
            )
        if combiner.get("results_identical") is not True:
            errors.append(
                "combiner: results_identical must be true — a combiner that changes "
                "the aggregate is a bug, not a shuffle optimization"
            )
    join = record.get("join")
    if not isinstance(join, dict):
        errors.append("'join' must be an object")
    else:
        if join.get("strategy_auto") != "merge":
            errors.append(
                "join: 'strategy_auto' must be 'merge' — the planner failed to exploit "
                "co-partitioned sides"
            )
        for key in ("merge_runtime_s", "hash_runtime_s"):
            value = join.get(key)
            if not (isinstance(value, (int, float)) and value > 0):
                errors.append(f"join: {key!r} must be a positive number")
        speedup = join.get("merge_speedup")
        if not isinstance(speedup, (int, float)):
            errors.append("join: 'merge_speedup' must be a number")
        elif speedup < 1.0:
            errors.append(
                f"join: merge_speedup {speedup:.3f}x < 1 — the shuffle-free merge join "
                "cost more than the hash fallback"
            )
        if not (isinstance(join.get("output_rows"), int) and join["output_rows"] > 0):
            errors.append("join: 'output_rows' must be a positive integer — the join was empty")
        if join.get("results_identical") is not True:
            errors.append(
                "join: results_identical must be true — the two strategies must agree "
                "with brute force bit for bit"
            )
    topk = record.get("topk")
    if not isinstance(topk, dict):
        errors.append("'topk' must be an object")
    else:
        total = topk.get("blocks_total")
        if not (isinstance(total, int) and total > 0):
            errors.append("topk: 'blocks_total' must be a positive integer")
        fraction = topk.get("read_fraction")
        if not isinstance(fraction, (int, float)):
            errors.append("topk: 'read_fraction' must be a number")
        elif fraction >= MAX_TOPK_READ_FRACTION:
            errors.append(
                f"topk: read_fraction {fraction:.2f} is not below the "
                f"{MAX_TOPK_READ_FRACTION:.2f} ceiling — early termination pruned nothing"
            )
        if topk.get("results_identical") is not True:
            errors.append(
                "topk: results_identical must be true — skipping a block that held a "
                "top row is corruption, not early termination"
            )
    return errors


def _check_chaos(record: dict, min_speedup: float) -> list[str]:
    """Violations of a ``kind: chaos`` record (the BENCH_10 concurrency-stress sweep)."""
    errors: list[str] = []
    tenants = record.get("tenants")
    if not (isinstance(tenants, int) and tenants >= 2):
        errors.append("'tenants' must be an integer >= 2 — one tenant is not multi-tenancy")
    scenarios = record.get("scenarios")
    if not isinstance(scenarios, list):
        return errors + ["'scenarios' must be a list of fault-scenario rows"]
    by_name = {
        row.get("scenario"): row for row in scenarios if isinstance(row, dict)
    }
    for name in REQUIRED_CHAOS_SCENARIOS:
        if name not in by_name:
            errors.append(f"missing scenario {name!r}")
    for name, row in by_name.items():
        label = f"scenarios[{name}]"
        for key in ("makespan_s", "latency_p99_s"):
            value = row.get(key)
            if not (isinstance(value, (int, float)) and value > 0):
                errors.append(f"{label}: {key!r} must be a positive number")
        if row.get("results_identical") is not True:
            errors.append(
                f"{label}: results_identical must be true — a fault that changes "
                "answers is corruption, not degraded service"
            )
        if row.get("quota_respected") is not True:
            errors.append(
                f"{label}: quota_respected must be true — "
                f"peak {row.get('peak_running_per_tenant')} running attempts exceeded "
                f"the {row.get('slot_quota')}-slot tenant quota"
            )
    speculation = by_name.get("straggler_speculation", {})
    if not (isinstance(speculation.get("spec_launched"), int) and speculation["spec_launched"] > 0):
        errors.append(
            "straggler_speculation: 'spec_launched' must be positive — no backup "
            "attempts means speculation never engaged"
        )
    node_death = by_name.get("node_death", {})
    if not (isinstance(node_death.get("rescheduled"), int) and node_death["rescheduled"] > 0):
        errors.append(
            "node_death: 'rescheduled' must be positive — a node death that "
            "rescheduled nothing killed nothing"
        )
    kills = record.get("preempt_kills")
    if not (isinstance(kills, int) and kills > 0):
        errors.append(
            "'preempt_kills' must be a positive integer — the preemption scenario "
            "never revoked a slot"
        )
    speedup = record.get("spec_speedup")
    if not isinstance(speedup, (int, float)):
        errors.append("'spec_speedup' must be a number")
    elif speedup < min_speedup:
        errors.append(
            f"spec_speedup {speedup:.2f}x is below the {min_speedup:.1f}x floor"
        )
    ratio = record.get("p99_ratio")
    if not isinstance(ratio, (int, float)):
        errors.append("'p99_ratio' must be a number")
    elif ratio > MAX_CHAOS_P99_RATIO:
        errors.append(
            f"p99_ratio {ratio:.2f}x exceeds the {MAX_CHAOS_P99_RATIO:.1f}x ceiling — "
            "node death degraded tail latency beyond the containment bound"
        )
    return errors


def check_record(record: Any, min_speedup: float | None = None) -> list[str]:
    """All schema/floor violations of one parsed record (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return ["record is not a JSON object"]
    bench_id = record.get("bench_id", "")
    if not (isinstance(bench_id, str) and bench_id.startswith("BENCH_")):
        errors.append("'bench_id' must be a string starting with 'BENCH_'")
    if record.get("schema_version") != 1:
        errors.append("'schema_version' must be 1")
    if record.get("kind") == "saturation":
        floor = min_speedup if min_speedup is not None else MIN_SATURATION_SPEEDUP
        return errors + _check_saturation(record, floor)
    if record.get("kind") == "recovery":
        floor = min_speedup if min_speedup is not None else MIN_RECOVERY_SPEEDUP
        return errors + _check_recovery(record, floor)
    if record.get("kind") == "operators":
        floor = min_speedup if min_speedup is not None else MIN_COMBINER_REDUCTION
        return errors + _check_operators(record, floor)
    if record.get("kind") == "chaos":
        floor = min_speedup if min_speedup is not None else MIN_SPEC_SPEEDUP
        return errors + _check_chaos(record, floor)
    if min_speedup is None:
        min_speedup = MIN_COMBINED_SPEEDUP
    if not isinstance(record.get("numpy_available"), bool):
        errors.append("'numpy_available' must be a boolean")
    workloads = record.get("workloads")
    if not isinstance(workloads, dict):
        return errors + ["'workloads' must be an object"]
    for name in REQUIRED_WORKLOADS:
        if name not in workloads:
            errors.append(f"missing workload {name!r}")
    for name in ("filter_micro", "skip_micro"):
        if isinstance(workloads.get(name), dict):
            _check_variants(errors, name, workloads[name])
    skip = workloads.get("skip_micro")
    if isinstance(skip, dict):
        skip_rate = skip.get("skip_rate")
        if not (isinstance(skip_rate, (int, float)) and 0 < skip_rate <= 1):
            errors.append("skip_micro: 'skip_rate' must be in (0, 1] — no rows were pruned")
        pruned_bytes = skip.get("pruned_bytes")
        if not (isinstance(pruned_bytes, (int, float)) and pruned_bytes > 0):
            errors.append("skip_micro: 'pruned_bytes' must be positive")
    figure = workloads.get("figure_workload")
    if isinstance(figure, dict):
        if not figure.get("zone_map_skipped_blocks"):
            errors.append("figure_workload: expected at least one zone-map-skipped block")
    combined = record.get("combined_speedup")
    if not isinstance(combined, (int, float)):
        errors.append("'combined_speedup' must be a number")
    elif combined < min_speedup:
        errors.append(
            f"combined_speedup {combined:.2f}x is below the {min_speedup:.1f}x floor"
        )
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="BENCH_*.json file to validate")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help=(
            "speedup floor override (default: "
            f"{MIN_COMBINED_SPEEDUP} for engine records, "
            f"{MIN_SATURATION_SPEEDUP} for saturation records, "
            f"{MIN_RECOVERY_SPEEDUP} for recovery records)"
        ),
    )
    options = parser.parse_args(argv)
    try:
        with open(options.path) as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"check_bench: cannot read {options.path}: {error}", file=sys.stderr)
        return 2
    errors = check_record(record, min_speedup=options.min_speedup)
    if errors:
        for error in errors:
            print(f"check_bench: {error}", file=sys.stderr)
        return 1
    if record.get("kind") == "saturation":
        print(
            f"check_bench: {options.path} ok — best_speedup_vs_serial="
            f"{record['best_speedup_vs_serial']:.2f}x over "
            f"{record['tenants']} tenants, "
            f"results_identical={record['results_identical']}"
        )
    elif record.get("kind") == "recovery":
        print(
            f"check_bench: {options.path} ok — recovery_speedup="
            f"{record['recovery_speedup']:.2f}x, "
            f"runtime_bit_identical={record['runtime_bit_identical']}, "
            f"adaptive_replicas_restored={record['adaptive_replicas_restored']}"
        )
    elif record.get("kind") == "operators":
        print(
            f"check_bench: {options.path} ok — combiner_reduction="
            f"{record['combiner']['pair_reduction']:.2f}x, "
            f"merge_speedup={record['join']['merge_speedup']:.3f}x, "
            f"topk_read_fraction={record['topk']['read_fraction']:.2f}"
        )
    elif record.get("kind") == "chaos":
        print(
            f"check_bench: {options.path} ok — spec_speedup="
            f"{record['spec_speedup']:.2f}x, p99_ratio={record['p99_ratio']:.2f}x, "
            f"preempt_kills={record['preempt_kills']}, "
            f"quota_respected={record['quota_respected']}"
        )
    else:
        print(
            f"check_bench: {options.path} ok — combined_speedup="
            f"{record['combined_speedup']:.2f}x, "
            f"skip_rate={record['workloads']['skip_micro']['skip_rate']:.2f}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
