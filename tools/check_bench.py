#!/usr/bin/env python3
"""Validate an emitted ``BENCH_*.json`` perf record against the pinned schema and floors.

Runs in CI right after the benchmark smoke step (stdlib only, no third-party dependencies):
the record must carry the expected shape (``bench_id``, the three workloads, per-variant
timings), every timed variant must have answered identically to the legacy baseline, the
skip workload must report its skip-rate/pruned-bytes stats, and the headline
``combined_speedup`` (kernels + zone-map skipping vs. the legacy mask pipeline, on whatever
backend the environment offers) must clear the acceptance floor.

Usage::

    python tools/check_bench.py BENCH_6.json
    python tools/check_bench.py --min-speedup 2.0 BENCH_6.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

#: The acceptance floor: kernels + skipping combined vs. the legacy pipeline.
MIN_COMBINED_SPEEDUP = 2.0

#: Workloads every record must contain.
REQUIRED_WORKLOADS = ("filter_micro", "skip_micro", "figure_workload")


def _check_variants(errors: list[str], workload: str, entry: dict) -> None:
    variants = entry.get("variants")
    if not isinstance(variants, dict) or len(variants) < 2:
        errors.append(f"{workload}: expected a 'variants' dict with a baseline and a kernel")
        return
    for name, variant in variants.items():
        seconds = variant.get("seconds")
        if not isinstance(seconds, (int, float)) or seconds <= 0:
            errors.append(f"{workload}/{name}: 'seconds' must be a positive number")
        speedup = variant.get("speedup")
        if not isinstance(speedup, (int, float)) or speedup <= 0:
            errors.append(f"{workload}/{name}: 'speedup' must be a positive number")
        if variant.get("results_identical") is not True:
            errors.append(
                f"{workload}/{name}: results_identical must be true — a speedup that "
                "changes the answer is a bug, not a win"
            )


def check_record(record: Any, min_speedup: float = MIN_COMBINED_SPEEDUP) -> list[str]:
    """All schema/floor violations of one parsed record (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return ["record is not a JSON object"]
    bench_id = record.get("bench_id", "")
    if not (isinstance(bench_id, str) and bench_id.startswith("BENCH_")):
        errors.append("'bench_id' must be a string starting with 'BENCH_'")
    if record.get("schema_version") != 1:
        errors.append("'schema_version' must be 1")
    if not isinstance(record.get("numpy_available"), bool):
        errors.append("'numpy_available' must be a boolean")
    workloads = record.get("workloads")
    if not isinstance(workloads, dict):
        return errors + ["'workloads' must be an object"]
    for name in REQUIRED_WORKLOADS:
        if name not in workloads:
            errors.append(f"missing workload {name!r}")
    for name in ("filter_micro", "skip_micro"):
        if isinstance(workloads.get(name), dict):
            _check_variants(errors, name, workloads[name])
    skip = workloads.get("skip_micro")
    if isinstance(skip, dict):
        skip_rate = skip.get("skip_rate")
        if not (isinstance(skip_rate, (int, float)) and 0 < skip_rate <= 1):
            errors.append("skip_micro: 'skip_rate' must be in (0, 1] — no rows were pruned")
        pruned_bytes = skip.get("pruned_bytes")
        if not (isinstance(pruned_bytes, (int, float)) and pruned_bytes > 0):
            errors.append("skip_micro: 'pruned_bytes' must be positive")
    figure = workloads.get("figure_workload")
    if isinstance(figure, dict):
        if not figure.get("zone_map_skipped_blocks"):
            errors.append("figure_workload: expected at least one zone-map-skipped block")
    combined = record.get("combined_speedup")
    if not isinstance(combined, (int, float)):
        errors.append("'combined_speedup' must be a number")
    elif combined < min_speedup:
        errors.append(
            f"combined_speedup {combined:.2f}x is below the {min_speedup:.1f}x floor"
        )
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="BENCH_*.json file to validate")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=MIN_COMBINED_SPEEDUP,
        help="combined_speedup floor (default %(default)s)",
    )
    options = parser.parse_args(argv)
    try:
        with open(options.path) as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"check_bench: cannot read {options.path}: {error}", file=sys.stderr)
        return 2
    errors = check_record(record, min_speedup=options.min_speedup)
    if errors:
        for error in errors:
            print(f"check_bench: {error}", file=sys.stderr)
        return 1
    print(
        f"check_bench: {options.path} ok — combined_speedup="
        f"{record['combined_speedup']:.2f}x, "
        f"skip_rate={record['workloads']['skip_micro']['skip_rate']:.2f}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
