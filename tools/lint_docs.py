#!/usr/bin/env python3
"""Documentation lint: a docstring-coverage floor plus a markdown link checker.

Runs in CI (and as ``tests/test_docs_lint.py``) with no third-party dependencies, so the
operator documentation cannot rot silently:

- **docstring floor** — every module, class and public function under the checked source
  trees must carry a docstring; the floor is a ratchet (interrogate-style) so incidental
  regressions fail fast while generated/private helpers stay exempt;
- **link check** — every relative markdown link in the checked documents must point at an
  existing file or directory (external ``http(s)``/``mailto`` targets and pure in-page
  anchors are skipped — CI must not depend on network access);
- **required guides** — the operator guides the documentation map (``docs/index.md``) names
  must exist, so a renamed or deleted guide fails loudly.

Usage::

    python tools/lint_docs.py            # lint the repository with the default settings
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

#: Source trees whose docstring coverage is enforced, with their floors (documented/total).
DOCSTRING_FLOORS: dict[str, float] = {
    "src/repro/engine": 0.95,
    # The declarative client layer is the user-facing surface: hold it to the same bar.
    "src/repro/api": 0.95,
    # The placement layer (scheduler/runner and the cluster models it budgets against) is
    # operator-facing through docs/scheduling.md: its modules must stay documented too.
    "src/repro/cluster": 0.95,
    "src/repro/mapreduce": 0.95,
    # The storage layouts carry the zone-map synopses and typed-column views the performance
    # guide (docs/performance.md) documents: same bar as the engine they feed.
    "src/repro/layouts": 0.95,
    # The persistence layer is operator-facing through docs/persistence.md and defines the
    # crash-safety contract the recovery tests rely on: it must stay documented.
    "src/repro/persist": 0.95,
}

#: Markdown documents whose relative links are checked.
LINKED_DOCUMENTS: tuple[str, ...] = ("README.md", "docs")

#: Operator guides that must exist (the docs/index.md map and CI both rely on them); a
#: deleted or renamed guide fails the lint instead of silently 404-ing from the map.
REQUIRED_DOCUMENTS: tuple[str, ...] = (
    "docs/index.md",
    "docs/api.md",
    "docs/adaptive-indexing.md",
    "docs/scheduling.md",
    "docs/performance.md",
    "docs/persistence.md",
    "docs/queries.md",
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


# --------------------------------------------------------------------------- docstring floor
def docstring_coverage(root: Path) -> tuple[int, int, list[str]]:
    """``(documented, total, missing)`` over all modules/classes/public functions under ``root``.

    A definition counts as public when its name does not start with ``_``; nested private
    helpers and dunder methods are exempt, mirroring how interrogate's default config counts.
    """
    documented = 0
    total = 0
    missing: list[str] = []
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for node, label in _documentable_nodes(tree, path):
            total += 1
            if ast.get_docstring(node) is not None:
                documented += 1
            else:
                missing.append(label)
    return documented, total, missing


def _documentable_nodes(tree: ast.Module, path: Path):
    yield tree, f"{path}:module"
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name.startswith("_"):
                continue
            yield node, f"{path}:{node.lineno}:{node.name}"


def check_docstrings(repo_root: Path, floors: dict[str, float]) -> list[str]:
    """Problems (empty when every checked tree meets its floor)."""
    problems: list[str] = []
    for relative, floor in floors.items():
        root = repo_root / relative
        if not root.exists():
            problems.append(f"{relative}: checked tree does not exist")
            continue
        documented, total, missing = docstring_coverage(root)
        coverage = documented / total if total else 1.0
        if coverage < floor:
            preview = ", ".join(missing[:5])
            problems.append(
                f"{relative}: docstring coverage {coverage:.1%} is below the {floor:.0%} "
                f"floor ({documented}/{total} documented; missing e.g. {preview})"
            )
    return problems


# --------------------------------------------------------------------------- link check
def markdown_files(repo_root: Path, documents: tuple[str, ...] = LINKED_DOCUMENTS) -> list[Path]:
    """The markdown files the link checker covers."""
    files: list[Path] = []
    for relative in documents:
        target = repo_root / relative
        if target.is_dir():
            files.extend(sorted(target.rglob("*.md")))
        elif target.exists():
            files.append(target)
    return files


def broken_links(markdown_file: Path) -> list[str]:
    """Relative links in ``markdown_file`` whose targets do not exist."""
    problems: list[str] = []
    text = markdown_file.read_text(encoding="utf-8")
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL_SCHEMES):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:  # pure in-page anchor
            continue
        resolved = (markdown_file.parent / path_part).resolve()
        if not resolved.exists():
            problems.append(f"{markdown_file}: broken link -> {target}")
    return problems


def check_links(repo_root: Path, documents: tuple[str, ...] = LINKED_DOCUMENTS) -> list[str]:
    """Broken relative links across all checked documents (empty when clean)."""
    problems: list[str] = []
    for markdown_file in markdown_files(repo_root, documents):
        problems.extend(broken_links(markdown_file))
    return problems


def check_required_documents(
    repo_root: Path, documents: tuple[str, ...] = REQUIRED_DOCUMENTS
) -> list[str]:
    """Operator guides that are missing from the repository (empty when all exist)."""
    return [
        f"{relative}: required operator guide does not exist"
        for relative in documents
        if not (repo_root / relative).is_file()
    ]


# --------------------------------------------------------------------------- entry point
def run(repo_root: Path) -> list[str]:
    """All lint problems for the repository (empty when clean)."""
    return (
        check_docstrings(repo_root, DOCSTRING_FLOORS)
        + check_links(repo_root)
        + check_required_documents(repo_root)
    )


def main() -> int:
    """Lint the repository this file lives in; 0 on success, 1 with a report otherwise."""
    repo_root = Path(__file__).resolve().parent.parent
    problems = run(repo_root)
    if problems:
        for problem in problems:
            print(f"lint_docs: {problem}", file=sys.stderr)
        return 1
    floors = ", ".join(f"{tree} >= {floor:.0%}" for tree, floor in DOCSTRING_FLOORS.items())
    print(f"lint_docs: ok (docstring floors: {floors}; links checked in "
          f"{len(markdown_files(repo_root))} markdown files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
