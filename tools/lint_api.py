#!/usr/bin/env python3
"""API-surface lint: pin the public exports against a checked-in manifest.

The declarative client layer (``repro`` / ``repro.api``) is the surface users program
against; renaming or dropping an export is a breaking change that should fail CI rather than
surface as a user's ``ImportError``.  This checker compares each pinned module's ``__all__``
with ``tools/public_api.json`` and reports drift in both directions:

- **removed** names — present in the manifest, gone from the module: a breaking change; if
  intentional, update the manifest in the same commit and say so in the change log;
- **added** names — exported but not in the manifest: widen the manifest deliberately, so the
  supported surface only ever grows on purpose;
- **dangling** names — listed in ``__all__`` but not actually importable from the module
  (a plain bug, manifest or not).

Usage::

    python tools/lint_api.py             # check (exit 1 on drift)
    python tools/lint_api.py --update    # rewrite the manifest from the current exports

Runs in CI and as ``tests/test_api_surface.py`` with no third-party dependencies.
"""

from __future__ import annotations

import importlib
import json
import sys
from pathlib import Path

#: Modules whose public surface is pinned.
PINNED_MODULES: tuple[str, ...] = ("repro", "repro.api")

#: The checked-in manifest of supported exports, relative to the repository root.
MANIFEST_PATH = "tools/public_api.json"


def exported_names(module_name: str) -> list[str]:
    """The module's declared public surface (sorted ``__all__``).

    A pinned module must declare ``__all__`` — the whole point is an explicit, reviewable
    export list — so its absence is an error, not a fallback to ``dir()``.
    """
    module = importlib.import_module(module_name)
    names = getattr(module, "__all__", None)
    if names is None:
        raise AttributeError(f"{module_name} must declare __all__ to be a pinned module")
    return sorted(names)


def check_module(module_name: str, pinned: list[str]) -> list[str]:
    """Problems for one module: removed/added names vs the manifest, dangling exports."""
    problems: list[str] = []
    module = importlib.import_module(module_name)
    actual = exported_names(module_name)
    dangling = [name for name in actual if not hasattr(module, name)]
    for name in dangling:
        problems.append(f"{module_name}: __all__ lists {name!r} but the module has no such attribute")
    removed = sorted(set(pinned) - set(actual))
    added = sorted(set(actual) - set(pinned))
    if removed:
        problems.append(
            f"{module_name}: exported names removed vs {MANIFEST_PATH}: {', '.join(removed)} "
            "(breaking change — if intentional, update the manifest in the same commit)"
        )
    if added:
        problems.append(
            f"{module_name}: new exported names not in {MANIFEST_PATH}: {', '.join(added)} "
            "(add them to the manifest to declare them supported)"
        )
    return problems


def load_manifest(repo_root: Path) -> dict[str, list[str]]:
    """The checked-in export manifest (module name -> sorted export list)."""
    manifest_file = repo_root / MANIFEST_PATH
    if not manifest_file.exists():
        raise FileNotFoundError(
            f"{MANIFEST_PATH} is missing; run 'python tools/lint_api.py --update' to create it"
        )
    return json.loads(manifest_file.read_text(encoding="utf-8"))


def run(repo_root: Path, manifest: dict[str, list[str]] | None = None) -> list[str]:
    """All API-surface problems for the repository (empty when clean)."""
    if manifest is None:
        manifest = load_manifest(repo_root)
    problems: list[str] = []
    for module_name in PINNED_MODULES:
        if module_name not in manifest:
            problems.append(f"{MANIFEST_PATH}: no entry for pinned module {module_name!r}")
            continue
        problems.extend(check_module(module_name, manifest[module_name]))
    for module_name in sorted(set(manifest) - set(PINNED_MODULES)):
        problems.append(
            f"{MANIFEST_PATH}: entry {module_name!r} is not a pinned module "
            f"(pinned: {', '.join(PINNED_MODULES)})"
        )
    return problems


def update_manifest(repo_root: Path) -> None:
    """Rewrite the manifest from the modules' current exports (the deliberate-change path)."""
    manifest = {module_name: exported_names(module_name) for module_name in PINNED_MODULES}
    manifest_file = repo_root / MANIFEST_PATH
    manifest_file.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")


def main(argv: list[str]) -> int:
    """Check (or with ``--update`` rewrite) the manifest; 0 on success."""
    repo_root = Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(repo_root / "src"))
    if "--update" in argv:
        update_manifest(repo_root)
        print(f"lint_api: wrote {MANIFEST_PATH} for {', '.join(PINNED_MODULES)}")
        return 0
    problems = run(repo_root)
    if problems:
        for problem in problems:
            print(f"lint_api: {problem}", file=sys.stderr)
        return 1
    manifest = load_manifest(repo_root)
    total = sum(len(names) for names in manifest.values())
    print(f"lint_api: ok ({total} exported names pinned across {', '.join(PINNED_MODULES)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
