"""Setuptools shim.

The offline evaluation environment has no ``wheel`` package, so PEP 517 editable installs
(``pip install -e .``) cannot build an editable wheel.  This ``setup.py`` lets pip fall back to
the legacy ``setup.py develop`` path (``pip install -e . --no-use-pep517 --no-build-isolation``)
and also allows ``python setup.py develop`` directly.
"""

from setuptools import setup

setup()
