"""Regenerate every table and figure of the paper's evaluation section.

Runs the full experiment harness (:func:`repro.experiments.run_all`) at the default miniature
scale and prints one table per figure.  Pass ``--medium`` for a configuration closer to the
paper's 10-node cluster (takes several minutes).

Run with ``python examples/reproduce_paper.py [--medium]``.
"""

import argparse
import time

from repro.experiments import ExperimentConfig, run_all


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--medium",
        action="store_true",
        help="use the 10-node 'medium' configuration instead of the fast default",
    )
    args = parser.parse_args()

    config = ExperimentConfig.medium() if args.medium else ExperimentConfig.small()
    print(f"configuration: {config}\n")

    started = time.time()
    results = run_all(config, progress=lambda key: print(f"[{time.time() - started:6.1f}s] running {key}..."))
    print(f"\nall experiments finished in {time.time() - started:.1f} s of wall-clock time\n")

    for figure in results.values():
        print()
        figure.print()


if __name__ == "__main__":
    main()
