"""Bob's exploratory log analysis session (the use case that motivates the paper).

Bob does not know up front which attribute he will filter on next: he starts with a date range,
notices a suspicious source IP, drills down on it, and finally looks at an ad-revenue band.
Because HAIL keeps a *different* clustered index on every replica (visitDate, sourceIP,
adRevenue), every one of these ad-hoc filters hits an index — something a single-index system
like Hadoop++ cannot offer.  The log also contains malformed rows, which HAIL separates as bad
records during upload and hands back to the job flagged as bad.

Run with ``python examples/exploratory_log_analysis.py``.
"""

from datetime import date

from repro.baselines import HadoopPlusPlusSystem
from repro.cluster import Cluster
from repro.datagen import UserVisitsGenerator
from repro.hail import HailSystem, Predicate
from repro.workloads.query import Query


def _session_queries() -> list[Query]:
    probe_ip = "172.101.11.46"
    return [
        Query(
            name="step-1-date-range",
            predicate=Predicate.between("visitDate", date(1999, 1, 1), date(2000, 1, 1)),
            projection=("sourceIP", "visitDate"),
            description="all source IPs that visited during 1999",
        ),
        Query(
            name="step-2-suspicious-ip",
            predicate=Predicate.equals("sourceIP", probe_ip),
            projection=("visitDate", "destURL", "adRevenue"),
            description=f"every request from the suspicious IP {probe_ip}",
        ),
        Query(
            name="step-3-revenue-band",
            predicate=Predicate.between("adRevenue", 1.0, 10.0),
            projection=("sourceIP", "adRevenue"),
            description="requests with adRevenue between 1 and 10",
        ),
    ]


def main() -> None:
    generator = UserVisitsGenerator(seed=7, probe_ip_rate=1 / 400)
    rows = generator.generate(6000)
    schema = generator.schema
    # Append a few malformed log lines to exercise bad-record handling.
    raw_lines = [schema.format_record(r) for r in rows]
    raw_lines.insert(100, "corrupted ###")
    raw_lines.insert(2500, "1.2.3.4|missing|fields")

    hail = HailSystem(
        Cluster.homogeneous(4), index_attributes=["visitDate", "sourceIP", "adRevenue"]
    )
    hadoopplusplus = HadoopPlusPlusSystem(Cluster.homogeneous(4), trojan_attribute="sourceIP")

    hail.upload("/logs/web", rows, schema, rows_per_block=300, raw_lines=raw_lines)
    hadoopplusplus.upload("/logs/web", rows, schema, rows_per_block=300)

    print("Bob's exploratory session (three ad-hoc filters on three different attributes):\n")
    hail_total = 0.0
    hpp_total = 0.0
    for query in _session_queries():
        hail_result = hail.run_query(query, "/logs/web")
        hpp_result = hadoopplusplus.run_query(query, "/logs/web")
        hail_total += hail_result.runtime_s
        hpp_total += hpp_result.runtime_s
        scans = hail_result.job.counters.value("INDEX_SCANS")
        print(f"{query.name:22s} ({query.description})")
        print(f"   matching records : {len(hail_result.records)}")
        print(f"   HAIL             : {hail_result.runtime_s:7.1f} s "
              f"(index scans on {int(scans)} tasks)")
        print(f"   Hadoop++         : {hpp_result.runtime_s:7.1f} s "
              f"(index only helps when filtering on sourceIP)\n")

    print(f"whole session: HAIL {hail_total:.1f} s vs Hadoop++ {hpp_total:.1f} s "
          f"({hpp_total / hail_total:.1f}x)")


if __name__ == "__main__":
    main()
