"""Choosing per-replica indexes for a scientific dataset with many attributes.

Section 3.4 of the paper asks: what if the dataset has more attributes than replicas?  Bob's web
log had only a handful, but a scientific dataset (the paper mentions SDSS-like data — our
Synthetic dataset with 19 integer attributes plays that role) forces a choice.  This example
uses the :class:`~repro.design.IndexAdvisor` to pick the three most valuable attributes for a
skewed query workload and shows the effect on query runtimes compared to a naive choice.

Run with ``python examples/index_advisor_scientific_data.py``.
"""

from repro.cluster import Cluster
from repro.datagen import SyntheticGenerator
from repro.design import IndexAdvisor
from repro.hail import HailSystem, Predicate
from repro.hail.predicate import Operator
from repro.workloads.query import Query


def _scientific_workload() -> tuple[list[Query], list[float]]:
    """Range scans over four different attributes with skewed frequencies."""
    queries = [
        Query("q-f3", Predicate.comparison("f3", Operator.LT, 50_000), ("f1", "f3"), selectivity=0.05),
        Query("q-f7", Predicate.comparison("f7", Operator.LT, 100_000), ("f7",), selectivity=0.10),
        Query("q-f12", Predicate.comparison("f12", Operator.LT, 20_000), ("f12", "f1"), selectivity=0.02),
        Query("q-f18", Predicate.comparison("f18", Operator.LT, 300_000), ("f18",), selectivity=0.30),
    ]
    weights = [10.0, 5.0, 3.0, 0.5]  # how often each query runs
    return queries, weights


def _total_runtime(system: HailSystem, queries, weights, path: str) -> float:
    total = 0.0
    for query, weight in zip(queries, weights):
        total += weight * system.run_query(query, path).runtime_s
    return total


def main() -> None:
    generator = SyntheticGenerator(seed=17)
    rows = generator.generate(5000)
    schema = generator.schema
    queries, weights = _scientific_workload()

    advisor = IndexAdvisor(schema, replication=3)
    recommendation = advisor.recommend(queries, weights=weights)
    print("Workload-driven index recommendation (3 replicas for 19 candidate attributes):")
    for attribute in recommendation.index_attributes:
        print(f"  replica index on {attribute}  (score {recommendation.scores[attribute]:.1f})")
    uncovered = [q.name for q in queries if not recommendation.covers(q.name)]
    print(f"  queries without a matching index: {uncovered or 'none'}\n")

    advised = HailSystem(Cluster.homogeneous(4), index_attributes=recommendation.index_attributes)
    naive = HailSystem(Cluster.homogeneous(4), index_attributes=["f1", "f2", "f3"])
    advised.upload("/sdss", rows, schema, rows_per_block=250)
    naive.upload("/sdss", rows, schema, rows_per_block=250)

    advised_total = _total_runtime(advised, queries, weights, "/sdss")
    naive_total = _total_runtime(naive, queries, weights, "/sdss")
    print(f"weighted workload runtime, advisor-chosen indexes : {advised_total:9.1f} s")
    print(f"weighted workload runtime, naive first-3 indexes  : {naive_total:9.1f} s")
    print(f"=> the advisor's choice is {naive_total / advised_total:.2f}x faster on this workload")


if __name__ == "__main__":
    main()
