"""Quickstart: upload a web log with HAIL and run Bob's first query.

This is the smallest end-to-end use of the public API:

1. build a simulated cluster,
2. create a :class:`~repro.hail.HailSystem` with one clustered index per replica,
3. upload a UserVisits-style log (each node uploads its share, indexes are built during upload),
4. run an annotated selection query and compare it against stock Hadoop.

Run with ``python examples/quickstart.py``.
"""

from repro.baselines import HadoopSystem
from repro.cluster import Cluster, CostModel, CostParameters, HardwareProfile
from repro.datagen import UserVisitsGenerator
from repro.hail import HailConfig, HailSystem
from repro.workloads import bob_queries

ROWS_PER_BLOCK = 250


def main() -> None:
    # A 4-node cluster with the paper's physical-node hardware profile.
    generator = UserVisitsGenerator(seed=42, probe_ip_rate=1 / 500)
    rows = generator.generate(4000)
    schema = generator.schema

    # Scale the cost model so every functional block of 250 rows stands in for a 64 MB HDFS
    # block (see DESIGN.md): simulated times then resemble the paper's cluster-scale numbers.
    block_bytes = sum(schema.text_size(r) for r in rows[:ROWS_PER_BLOCK])
    data_scale = 64 * 1024 * 1024 / block_bytes

    hail = HailSystem(
        Cluster.homogeneous(4, HardwareProfile.physical()),
        config=HailConfig.for_attributes(
            ["visitDate", "sourceIP", "adRevenue"], functional_partition_size=1
        ),
        cost=CostModel(CostParameters(data_scale=data_scale)),
    )
    hadoop = HadoopSystem(
        Cluster.homogeneous(4, HardwareProfile.physical()),
        cost=CostModel(CostParameters(data_scale=data_scale)),
    )

    print("Uploading the web log into both systems...")
    hail_upload = hail.upload("/logs/uservisits", rows, schema, rows_per_block=ROWS_PER_BLOCK)
    hadoop_upload = hadoop.upload("/logs/uservisits", rows, schema, rows_per_block=ROWS_PER_BLOCK)
    print(f"  Hadoop upload : {hadoop_upload.total_s:8.1f} simulated seconds")
    print(f"  HAIL upload   : {hail_upload.total_s:8.1f} simulated seconds "
          f"({hail_upload.num_indexes} clustered indexes per block, for free)")
    print(f"  replica index distribution: {hail.replica_distribution('/logs/uservisits')}")

    query = bob_queries()[0]  # SELECT sourceIP WHERE visitDate BETWEEN 1999-01-01 AND 2000-01-01
    print(f"\nRunning {query.name}: {query.description}")
    hail_result = hail.run_query(query, "/logs/uservisits")
    hadoop_result = hadoop.run_query(query, "/logs/uservisits")

    assert sorted(hail_result.records) == sorted(hadoop_result.records)
    print(f"  both systems return {len(hail_result.records)} records (results verified equal)")
    print(f"  Hadoop : {hadoop_result.runtime_s:8.1f} s end-to-end, "
          f"{hadoop_result.record_reader_s * 1000:8.1f} ms per RecordReader")
    print(f"  HAIL   : {hail_result.runtime_s:8.1f} s end-to-end, "
          f"{hail_result.record_reader_s * 1000:8.1f} ms per RecordReader "
          f"({hail_result.job.num_map_tasks} map tasks thanks to HailSplitting)")
    speedup = hadoop_result.runtime_s / hail_result.runtime_s
    print(f"  => HAIL answers Bob {speedup:.1f}x faster")


if __name__ == "__main__":
    main()
