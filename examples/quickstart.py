"""Quickstart: the declarative client API — Session, Dataset, and the expression DSL.

This is the smallest end-to-end use of the public API:

1. deploy a session owning two systems (HAIL and stock Hadoop) on simulated 4-node clusters,
2. upload a UserVisits-style log once through the session (indexes are built during upload),
3. build the query declaratively — ``col(...)`` expressions, ``where``/``select`` — and let
   the normalizer compile it to an engine plan (no hand-ordered predicate clauses),
4. ``explain()`` the chosen access paths, ``collect()`` on both systems, and run a small
   batch to show the per-session statistics.

Run with ``python examples/quickstart.py``.
"""

from datetime import date

from repro import Session, col
from repro.datagen import UserVisitsGenerator

ROWS_PER_BLOCK = 250


def main() -> None:
    # A UserVisits-style web log; the probe IP keeps Bob's needle queries non-empty.
    generator = UserVisitsGenerator(seed=42, probe_ip_rate=1 / 500)
    rows = generator.generate(4000)
    schema = generator.schema

    # Scale the cost model so every functional block of 250 rows stands in for a 64 MB HDFS
    # block (see DESIGN.md): simulated times then resemble the paper's cluster-scale numbers.
    block_bytes = sum(schema.text_size(r) for r in rows[:ROWS_PER_BLOCK])
    data_scale = 64 * 1024 * 1024 / block_bytes

    # One session, two systems (each on its own fresh 4-node cluster): HAIL with one clustered
    # index per replica — Bob's configuration from the paper — and stock Hadoop to compare.
    session = Session.deploy(
        nodes=4,
        systems=("HAIL", "Hadoop"),
        index_attributes=["visitDate", "sourceIP", "adRevenue"],
        data_scale=data_scale,
    )

    print("Uploading the web log into both systems...")
    visits = session.upload("/logs/uservisits", rows, schema, rows_per_block=ROWS_PER_BLOCK)
    hail_upload = session.upload_reports["/logs/uservisits"]["HAIL"]
    hadoop_upload = session.upload_reports["/logs/uservisits"]["Hadoop"]
    print(f"  Hadoop upload : {hadoop_upload.total_s:8.1f} simulated seconds")
    print(f"  HAIL upload   : {hail_upload.total_s:8.1f} simulated seconds "
          f"({hail_upload.num_indexes} clustered indexes per block, for free)")
    print(f"  replica index distribution: "
          f"{session.system('HAIL').replica_distribution('/logs/uservisits')}")

    # Bob's first query, written declaratively.  The DSL compiles to the same engine plan as
    # a hand-built Query: clause order, description and plan come from the normalizer.
    january_visitors = (
        visits.where(col("visitDate").between(date(1999, 1, 1), date(2000, 1, 1)))
        .select("sourceIP")
        .named("Bob-Q1")
    )
    print(f"\nRunning {january_visitors.to_query()}")
    print("Plan on HAIL (access path and chosen replica per block):")
    print("  " + january_visitors.explain(system="HAIL").replace("\n", "\n  "))

    hail_result = january_visitors.collect(system="HAIL")
    hadoop_result = january_visitors.collect(system="Hadoop")

    assert sorted(hail_result.records) == sorted(hadoop_result.records)
    print(f"  both systems return {len(hail_result.records)} records (results verified equal)")
    print(f"  Hadoop : {hadoop_result.runtime_s:8.1f} s end-to-end, "
          f"{hadoop_result.record_reader_s * 1000:8.1f} ms per RecordReader")
    print(f"  HAIL   : {hail_result.runtime_s:8.1f} s end-to-end, "
          f"{hail_result.record_reader_s * 1000:8.1f} ms per RecordReader "
          f"({hail_result.job.num_map_tasks} map tasks thanks to HailSplitting)")
    speedup = hadoop_result.runtime_s / hail_result.runtime_s
    print(f"  => HAIL answers Bob {speedup:.1f}x faster")

    # Deferred execution: submit a small workload, drain it as one batch, inspect the stats.
    probe = "172.101.11.46"
    january_visitors.submit(system="HAIL")
    visits.where(col("sourceIP") == probe).select("searchWord", "adRevenue").named(
        "Bob-Q2"
    ).submit(system="HAIL")
    batch = session.run_batch()
    stats = session.stats(system="HAIL")
    print(f"\nBatch of {len(batch)} deferred queries: {batch.total_runtime_s:.1f} s total; "
          f"session ran {stats.queries_run} HAIL queries overall")


if __name__ == "__main__":
    main()
